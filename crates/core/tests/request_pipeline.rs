//! Differential coverage of the typed request pipeline: heterogeneous
//! `submit` batches (distance / path-graph / sketch modes mixed, including
//! poisoned out-of-range pairs) must return **per-request** outcomes that
//! are bit-identical between the owned index and an mmap-backed view
//! store, and cache hits must be bit-identical to fresh answers — the
//! `viewserve`-style harness applied to the request pipeline.

use proptest::prelude::*;

use qbs_core::request::{QueryMode, QueryOutcome, QueryRequest};
use qbs_core::serialize::{self, MapMode};
use qbs_core::{CacheConfig, Qbs, QbsConfig, QbsIndex, QueryEngine};
use qbs_gen::prelude::*;
use qbs_graph::{Graph, VertexId};

/// A heterogeneous request batch over a sampled workload: modes cycle
/// distance → path → path+stats → sketch, with one poisoned pair spliced
/// into the middle.
fn mixed_requests(pairs: &[(VertexId, VertexId)], num_vertices: usize) -> Vec<QueryRequest> {
    let mut requests: Vec<QueryRequest> = pairs
        .iter()
        .enumerate()
        .map(|(i, &(u, v))| match i % 4 {
            0 => QueryRequest::distance(u, v),
            1 => QueryRequest::path_graph(u, v),
            2 => QueryRequest::path_graph(u, v).with_stats(),
            _ => QueryRequest::sketch(u, v),
        })
        .collect();
    let poison = num_vertices as VertexId;
    requests.insert(requests.len() / 2, QueryRequest::path_graph(poison, 0));
    requests
}

/// Runs the same mixed batch through both backends and checks per-slot
/// semantics: the poisoned slot (and only it) errors, every mode-specific
/// outcome matches the legacy single-query entry point, and the two
/// backends agree bit-for-bit.
fn assert_mixed_batch_identical(
    owned: &QbsIndex,
    store: &qbs_core::ViewStore,
    pairs: &[(VertexId, VertexId)],
) {
    let requests = mixed_requests(pairs, owned.graph().num_vertices());
    let owned_engine = QueryEngine::with_threads(owned, 2).expect("owned engine");
    let view_engine = QueryEngine::with_threads(store, 2).expect("view engine");

    let owned_outcomes = owned_engine.submit(&requests);
    let view_outcomes = view_engine.submit(&requests);
    assert_eq!(owned_outcomes.len(), requests.len());

    for (slot, ((req, a), b)) in requests
        .iter()
        .zip(&owned_outcomes)
        .zip(&view_outcomes)
        .enumerate()
    {
        assert_eq!(a, b, "slot {slot} diverged across backends");
        let poisoned = (req.source as usize) >= owned.graph().num_vertices()
            || (req.target as usize) >= owned.graph().num_vertices();
        if poisoned {
            assert!(a.is_error(), "slot {slot} should be the error slot");
            continue;
        }
        match req.mode {
            QueryMode::Distance => assert_eq!(
                a.distance(),
                Some(owned.distance(req.source, req.target).expect("in range")),
                "slot {slot}"
            ),
            QueryMode::PathGraph => {
                let expected = owned
                    .query_with_stats(req.source, req.target)
                    .expect("in range");
                assert_eq!(a.path_graph(), Some(&expected.path_graph), "slot {slot}");
                if req.opts.collect_stats {
                    assert_eq!(a.answer(), Some(&expected), "slot {slot} stats");
                } else {
                    assert!(a.answer().is_none(), "slot {slot} has no stats");
                }
            }
            QueryMode::Sketch => assert_eq!(
                a.sketch(),
                Some(&owned.sketch(req.source, req.target).expect("in range")),
                "slot {slot}"
            ),
        }
    }

    // Exactly one slot failed: the poisoned one.
    assert_eq!(
        owned_outcomes.iter().filter(|o| o.is_error()).count(),
        1,
        "one poisoned pair, one error outcome"
    );
}

#[test]
fn mixed_submit_is_bit_identical_between_owned_and_mmap_backends() {
    let graph = barabasi_albert::generate(&BarabasiAlbertConfig {
        vertices: 3_000,
        edges_per_vertex: 3,
        seed: 4_2026,
    });
    let pairs = QueryWorkload::sample(&graph, 128, 11).pairs().to_vec();
    let owned = QbsIndex::build(graph, QbsConfig::with_landmark_count(10));

    let dir = std::env::temp_dir().join("qbs_request_pipeline_test");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("ba3000.qbs2");
    serialize::save_to_file(&owned, &path).expect("save");
    let store = serialize::open_store_from_file(&path, MapMode::Mmap).expect("map");

    assert_mixed_batch_identical(&owned, &store, &pairs);
}

/// Regression: a poisoned pair mid-batch produces an error outcome for
/// that slot only, on both backends — where the legacy wrapper aborts the
/// whole batch.
#[test]
fn poisoned_pair_fails_its_slot_only_on_both_backends() {
    let owned = QbsIndex::build(
        qbs_graph::fixtures::figure4_graph(),
        QbsConfig::with_explicit_landmarks(vec![1, 2, 3]),
    );
    let store = qbs_core::ViewStore::new(owned.as_view());
    let requests = vec![
        QueryRequest::path_graph(6, 11),
        QueryRequest::distance(4, 12),
        QueryRequest::path_graph(99, 0), // poisoned, mid-batch
        QueryRequest::sketch(7, 9),
        QueryRequest::distance(13, 8),
    ];
    for engine in [
        QueryEngine::with_threads(&owned, 2).expect("owned"),
        // A second owned engine stands in for per-backend determinism.
        QueryEngine::with_threads(&owned, 1).expect("owned single"),
    ] {
        let outcomes = engine.submit(&requests);
        assert!(outcomes[2].is_error());
        assert_eq!(outcomes.iter().filter(|o| o.is_error()).count(), 1);
    }
    let view_engine = QueryEngine::with_threads(&store, 2).expect("view");
    let owned_engine = QueryEngine::with_threads(&owned, 2).expect("owned");
    assert_eq!(
        owned_engine.submit(&requests),
        view_engine.submit(&requests)
    );

    // `into_result` restores the legacy fail-fast shape for callers that
    // still want one error to abort their whole batch.
    let failed = owned_engine
        .submit(&requests)
        .into_iter()
        .map(qbs_core::QueryOutcome::into_result)
        .collect::<Result<Vec<_>, _>>();
    assert!(failed.is_err(), "the poisoned slot surfaces as QbsError");
}

/// The Qbs façade serves the same answers as the raw engines, from both a
/// built session and a session opened off an index file.
#[test]
fn facade_sessions_agree_with_raw_engines() {
    let graph = barabasi_albert::generate(&BarabasiAlbertConfig {
        vertices: 1_500,
        edges_per_vertex: 3,
        seed: 7,
    });
    let pairs = QueryWorkload::sample(&graph, 64, 3).pairs().to_vec();
    let built = Qbs::build(graph.clone(), QbsConfig::with_landmark_count(8)).expect("build");

    let dir = std::env::temp_dir().join("qbs_request_pipeline_facade");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("ba1500.qbs2");
    serialize::save_to_file(built.index().expect("owned"), &path).expect("save");
    let opened = Qbs::open(&path, MapMode::Mmap).expect("open");
    assert_eq!(opened.backend().name(), "view");

    let requests = mixed_requests(&pairs, graph.num_vertices());
    assert_eq!(built.submit(&requests), opened.submit(&requests));
    for &(u, v) in pairs.iter().take(8) {
        assert_eq!(built.query(u, v).unwrap(), opened.query(u, v).unwrap());
        assert_eq!(
            built.distance(u, v).unwrap(),
            opened.distance(u, v).unwrap()
        );
    }
}

/// One graph per generator family, sized by the proptest case.
fn family_graph(family: u64, vertices: usize, seed: u64) -> Graph {
    match family % 4 {
        0 => barabasi_albert::generate(&BarabasiAlbertConfig {
            vertices,
            edges_per_vertex: 2,
            seed,
        }),
        1 => erdos_renyi::generate(&ErdosRenyiConfig {
            vertices,
            edges: vertices * 2,
            seed,
        }),
        2 => watts_strogatz::generate(&WattsStrogatzConfig {
            vertices,
            neighbors: 2,
            rewire_probability: 0.2,
            seed,
        }),
        _ => power_law::generate(&PowerLawConfig {
            vertices,
            edges: vertices * 2,
            exponent: 2.5,
            seed,
        }),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    // On both backends, a Distance outcome always equals the eccentric
    // distance of the PathGraph outcome for the same pair, and cache hits
    // are bit-identical to fresh answers.
    #[test]
    fn distance_mode_agrees_with_path_graph_mode_and_cache_hits_are_identical(
        family in 0u64..4,
        vertices in 24usize..90,
        landmarks in 1usize..6,
        seed in 0u64..1_000,
    ) {
        let graph = family_graph(family, vertices, seed);
        let owned = QbsIndex::build(graph.clone(), QbsConfig::with_landmark_count(landmarks));

        let dir = std::env::temp_dir().join("qbs_request_pipeline_proptest");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join(format!("case_{family}_{vertices}_{landmarks}_{seed}.qbs2"));
        serialize::save_to_file(&owned, &path).expect("save");
        let store = serialize::open_store_from_file(&path, MapMode::Mmap).expect("open");

        let pairs = QueryWorkload::sample(&graph, 32, seed ^ 0x5EED).pairs().to_vec();
        let owned_engine = QueryEngine::with_threads(&owned, 2).expect("owned engine")
            .with_answer_cache(CacheConfig::default().admit_above(0));
        let view_engine = QueryEngine::with_threads(&store, 2).expect("view engine")
            .with_answer_cache(CacheConfig::default().admit_above(0));

        let distance_reqs: Vec<QueryRequest> =
            pairs.iter().map(|&(u, v)| QueryRequest::distance(u, v)).collect();
        let path_reqs: Vec<QueryRequest> =
            pairs.iter().map(|&(u, v)| QueryRequest::path_graph(u, v)).collect();

        let owned_distances = owned_engine.submit(&distance_reqs);
        let view_distances = view_engine.submit(&distance_reqs);
        let owned_paths = owned_engine.submit(&path_reqs);
        let view_paths = view_engine.submit(&path_reqs);

        for (i, &(u, v)) in pairs.iter().enumerate() {
            prop_assert_eq!(&owned_distances[i], &view_distances[i], "distance ({}, {})", u, v);
            prop_assert_eq!(&owned_paths[i], &view_paths[i], "path ({}, {})", u, v);
            // Distance mode == the path graph's eccentric distance.
            prop_assert_eq!(
                owned_distances[i].distance(),
                owned_paths[i].path_graph().map(|pg| pg.distance()),
                "mode disagreement on ({}, {})", u, v
            );
        }

        // Second pass: every answer now comes from the cache (same keys),
        // and must be bit-identical to the first pass on both backends.
        let owned_hits_before = owned_engine.cache_stats().expect("cache").hits;
        prop_assert_eq!(owned_engine.submit(&distance_reqs), owned_distances);
        prop_assert_eq!(owned_engine.submit(&path_reqs), owned_paths);
        prop_assert_eq!(view_engine.submit(&distance_reqs), view_distances);
        prop_assert_eq!(view_engine.submit(&path_reqs), view_paths);
        let stats = owned_engine.cache_stats().expect("cache");
        prop_assert!(stats.hits > owned_hits_before, "warm pass hit the cache: {:?}", stats);

        std::fs::remove_file(&path).ok();
    }
}

/// Distance-mode cache entries are orientation-free; the cached reverse
/// lookup still matches a fresh reverse computation exactly.
#[test]
fn symmetric_distance_cache_hits_match_fresh_reversed_queries() {
    let graph = barabasi_albert::generate(&BarabasiAlbertConfig {
        vertices: 500,
        edges_per_vertex: 3,
        seed: 21,
    });
    let owned = QbsIndex::build(graph.clone(), QbsConfig::with_landmark_count(6));
    let cached = QueryEngine::with_threads(&owned, 2)
        .expect("engine")
        .with_answer_cache(CacheConfig::default().admit_above(0));
    let fresh = QueryEngine::with_threads(&owned, 2).expect("engine");

    let pairs = QueryWorkload::sample(&graph, 64, 5).pairs().to_vec();
    let forward: Vec<QueryRequest> = pairs
        .iter()
        .map(|&(u, v)| QueryRequest::distance(u, v))
        .collect();
    let reverse: Vec<QueryRequest> = pairs
        .iter()
        .map(|&(u, v)| QueryRequest::distance(v, u))
        .collect();
    cached.submit(&forward);
    let warm_reversed = cached.submit(&reverse);
    let fresh_reversed = fresh.submit(&reverse);
    assert_eq!(warm_reversed, fresh_reversed);
    let stats = cached.cache_stats().expect("cache");
    assert!(
        stats.hits > 0,
        "reversed lookups hit the symmetric key: {stats:?}"
    );
    assert!(matches!(warm_reversed[0], QueryOutcome::Distance(_)));
}
