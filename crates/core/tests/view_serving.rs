//! Differential coverage of the view-serving path: batch-engine answers
//! computed over a [`ViewStore`] — including one backed by a
//! `ViewBuf::Mmap` mapping of a real file — must be **bit-identical** to
//! the owned-`QbsIndex` answers, on the checked-in golden fixture and on a
//! proptest-generated graph family. The serving flow under test never
//! calls `QbsIndex::from_view`: the whole query stack runs over the raw
//! index-file bytes.

use proptest::prelude::*;

use qbs_core::serialize::{self, MapMode};
use qbs_core::{QbsConfig, QbsIndex, QueryEngine, QueryRequest, ViewBuf, ViewStore};
use qbs_gen::prelude::*;
use qbs_graph::{Graph, VertexId};

/// Path of the checked-in golden fixture (shared with `format_v2.rs`).
fn fixture_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("figure4.qbs2")
}

fn all_pairs(n: u32) -> Vec<(VertexId, VertexId)> {
    let mut pairs = Vec::new();
    for u in 0..n {
        for v in 0..n {
            pairs.push((u, v));
        }
    }
    pairs
}

/// Runs `pairs` through batch engines over both backends and asserts the
/// full answers (path graph, sketch, stats) and distances are identical.
fn assert_bit_identical(owned: &QbsIndex, store: &ViewStore, pairs: &[(VertexId, VertexId)]) {
    let owned_engine = QueryEngine::with_threads(owned, 2).expect("owned engine");
    let view_engine = QueryEngine::with_threads(store, 2).expect("view engine");

    let requests: Vec<QueryRequest> = pairs
        .iter()
        .map(|&(u, v)| QueryRequest::path_graph(u, v).with_stats())
        .collect();
    let owned_answers = owned_engine.submit(&requests);
    let view_answers = view_engine.submit(&requests);
    for ((x, y), &(u, v)) in owned_answers.iter().zip(&view_answers).zip(pairs) {
        let a = x.answer().expect("in range");
        let b = y.answer().expect("in range");
        assert_eq!(a.path_graph, b.path_graph, "SPG({u}, {v}) diverged");
        assert_eq!(a.sketch, b.sketch, "sketch({u}, {v}) diverged");
        assert_eq!(a.stats, b.stats, "stats({u}, {v}) diverged");
    }

    let distances: Vec<QueryRequest> = pairs
        .iter()
        .map(|&(u, v)| QueryRequest::distance(u, v))
        .collect();
    assert_eq!(
        owned_engine.submit(&distances),
        view_engine.submit(&distances),
        "distance batch diverged"
    );
}

/// The golden fixture, memory-mapped and served without materialisation,
/// answers every figure-4 pair exactly like the owned index.
#[test]
fn mmap_backed_engine_matches_owned_index_on_golden_fixture() {
    let store = ViewStore::new(
        serialize::load_view_from_file(fixture_path(), MapMode::Mmap).expect("map fixture"),
    );
    assert!(
        matches!(store.view().buf(), ViewBuf::Mmap(_)),
        "fixture must be served from the mapped buffer"
    );
    // Deferred integrity validation passes on the checked-in fixture.
    store.view().verify().expect("fixture integrity");

    let owned = QbsIndex::build(
        qbs_graph::fixtures::figure4_graph(),
        QbsConfig::with_explicit_landmarks(vec![1, 2, 3]),
    );
    assert_bit_identical(&owned, &store, &all_pairs(15));
}

/// Engine answers over an mmap-backed store of a generated graph written to
/// disk — the full build → save → map → serve pipeline.
#[test]
fn mmap_serving_roundtrip_on_generated_graph() {
    let graph = barabasi_albert::generate(&BarabasiAlbertConfig {
        vertices: 3_000,
        edges_per_vertex: 3,
        seed: 2024,
    });
    let pairs = QueryWorkload::sample(&graph, 256, 7).pairs().to_vec();
    let owned = QbsIndex::build(graph, QbsConfig::with_landmark_count(10));

    let dir = std::env::temp_dir().join("qbs_view_serving_test");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("ba3000.qbs2");
    serialize::save_to_file(&owned, &path).expect("save");

    let store = serialize::open_store_from_file(&path, MapMode::Mmap).expect("open store");
    assert!(matches!(store.view().buf(), ViewBuf::Mmap(_)));
    assert!(!store.view().is_verified(), "mmap mode defers validation");
    assert_bit_identical(&owned, &store, &pairs);

    // MapMode::Read over the same file is equally bit-identical (and
    // eagerly verified).
    let read_store = serialize::open_store_from_file(&path, MapMode::Read).expect("read store");
    assert!(read_store.view().is_verified());
    assert_bit_identical(&owned, &read_store, &pairs);
}

/// One graph per generator family, sized by the proptest case.
fn family_graph(family: u64, vertices: usize, seed: u64) -> Graph {
    match family % 4 {
        0 => barabasi_albert::generate(&BarabasiAlbertConfig {
            vertices,
            edges_per_vertex: 2,
            seed,
        }),
        1 => erdos_renyi::generate(&ErdosRenyiConfig {
            vertices,
            edges: vertices * 2,
            seed,
        }),
        2 => watts_strogatz::generate(&WattsStrogatzConfig {
            vertices,
            neighbors: 2,
            rewire_probability: 0.2,
            seed,
        }),
        _ => power_law::generate(&PowerLawConfig {
            vertices,
            edges: vertices * 2,
            exponent: 2.5,
            seed,
        }),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    // Across generator families: an mmap-backed view store written to disk
    // and an owned index answer a sampled workload identically, through
    // the batch engine.
    #[test]
    fn view_engine_is_bit_identical_across_generator_families(
        family in 0u64..4,
        vertices in 24usize..100,
        landmarks in 1usize..7,
        seed in 0u64..1_000,
    ) {
        let graph = family_graph(family, vertices, seed);
        let owned = QbsIndex::build(graph.clone(), QbsConfig::with_landmark_count(landmarks));

        let dir = std::env::temp_dir().join("qbs_view_serving_proptest");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join(format!("case_{family}_{vertices}_{landmarks}_{seed}.qbs2"));
        serialize::save_to_file(&owned, &path).expect("save");
        let store = serialize::open_store_from_file(&path, MapMode::Mmap).expect("open");

        let pairs = QueryWorkload::sample(&graph, 48, seed ^ 0xABCD).pairs().to_vec();
        let owned_engine = QueryEngine::with_threads(&owned, 2).expect("owned engine");
        let view_engine = QueryEngine::with_threads(&store, 2).expect("view engine");
        let requests: Vec<QueryRequest> = pairs
            .iter()
            .map(|&(u, v)| QueryRequest::path_graph(u, v).with_stats())
            .collect();
        let a = owned_engine.submit(&requests);
        let b = view_engine.submit(&requests);
        for ((x, y), &(u, v)) in a.iter().zip(&b).zip(&pairs) {
            prop_assert_eq!(x, y, "answer of ({}, {}) diverged", u, v);
        }
        std::fs::remove_file(&path).ok();
    }
}

/// The view path enforces the same public bounds checks as the owned one.
#[test]
fn view_store_rejects_out_of_range_vertices() {
    let owned = QbsIndex::build(
        qbs_graph::fixtures::figure4_graph(),
        QbsConfig::with_explicit_landmarks(vec![1, 2, 3]),
    );
    let store = ViewStore::new(owned.as_view());
    let engine = QueryEngine::with_threads(&store, 1).expect("engine");
    let err = engine.query(0, 99).unwrap_err();
    assert!(matches!(
        err,
        qbs_core::QbsError::VertexOutOfRange { vertex: 99, .. }
    ));
    let outcomes = engine.submit(&[
        QueryRequest::path_graph(0, 1),
        QueryRequest::path_graph(200, 0),
    ]);
    assert!(!outcomes[0].is_error(), "good slot unaffected");
    assert!(matches!(
        outcomes[1].clone().into_result().unwrap_err(),
        qbs_core::QbsError::VertexOutOfRange { vertex: 200, .. }
    ));
    let mut ws = qbs_core::QueryWorkspace::new();
    assert!(qbs_core::query_on(&store, &mut ws, 77, 0).is_err());
    assert!(qbs_core::sketch_on(&store, 0, 77).is_err());
}
