//! Differential tests for the workspace-based query path.
//!
//! Asserts that `QbsIndex::query_with` (one epoch-stamped workspace reused
//! across hundreds of mixed queries) and `QueryEngine::submit` (the
//! concurrent batch API) return results **bit-identical** to the
//! fresh-allocation `QbsIndex::query` path, across Erdős–Rényi,
//! Barabási–Albert and Watts–Strogatz graphs and multiple seeds — the
//! stale-epoch regression surface: any slot that survives a workspace reset
//! would corrupt a later query's answer.

use qbs_baselines::{GroundTruth, SpgEngine};
use qbs_core::{QbsConfig, QbsIndex, QueryEngine, QueryRequest, QueryWorkspace};
use qbs_gen::prelude::*;
use qbs_gen::QueryWorkload;
use qbs_graph::Graph;

/// The generator families of the satellite spec, two seeds each.
fn generator_suite() -> Vec<(String, Graph)> {
    let mut graphs = Vec::new();
    for seed in [7u64, 2021] {
        graphs.push((
            format!("erdos-renyi/{seed}"),
            erdos_renyi::generate(&ErdosRenyiConfig {
                vertices: 300,
                edges: 600,
                seed,
            }),
        ));
        graphs.push((
            format!("barabasi-albert/{seed}"),
            barabasi_albert::generate(&BarabasiAlbertConfig {
                vertices: 300,
                edges_per_vertex: 3,
                seed,
            }),
        ));
        graphs.push((
            format!("watts-strogatz/{seed}"),
            watts_strogatz::generate(&WattsStrogatzConfig {
                vertices: 300,
                neighbors: 2,
                rewire_probability: 0.2,
                seed,
            }),
        ));
    }
    graphs
}

/// A mixed workload: sampled pairs plus adversarial shapes — repeated
/// pairs, reversed pairs, identical endpoints, and landmark endpoints.
fn mixed_workload(graph: &Graph, index: &QbsIndex, seed: u64) -> Vec<(u32, u32)> {
    let mut pairs = QueryWorkload::sample(graph, 100, seed).pairs().to_vec();
    let sampled: Vec<(u32, u32)> = pairs.iter().take(10).copied().collect();
    for &(u, v) in &sampled {
        pairs.push((v, u)); // symmetry under reuse
        pairs.push((u, v)); // exact repetition under reuse
        pairs.push((u, u)); // trivial queries interleaved
    }
    for &r in index.landmarks().iter().take(4) {
        pairs.push((r, sampled[0].1)); // landmark endpoint (scratch filter)
        pairs.push((sampled[0].0, r));
    }
    if index.landmarks().len() >= 2 {
        pairs.push((index.landmarks()[0], index.landmarks()[1]));
    }
    pairs
}

#[test]
fn workspace_reuse_is_bit_identical_to_fresh_queries() {
    for (name, graph) in generator_suite() {
        let index = QbsIndex::build(graph.clone(), QbsConfig::with_landmark_count(8));
        let pairs = mixed_workload(&graph, &index, 42);
        assert!(
            pairs.len() > 100,
            "{name}: the workload must exercise 100+ queries"
        );

        let mut ws = QueryWorkspace::new();
        for &(u, v) in &pairs {
            let fresh = index.query_with_stats(u, v).expect("fresh query");
            let reused = index.query_with(&mut ws, u, v).expect("workspace query");
            assert_eq!(
                reused.path_graph, fresh.path_graph,
                "{name}: answer of ({u},{v})"
            );
            assert_eq!(reused.sketch, fresh.sketch, "{name}: sketch of ({u},{v})");
            assert_eq!(reused.stats, fresh.stats, "{name}: stats of ({u},{v})");
        }
        assert_eq!(ws.queries_served(), pairs.len() as u64);
    }
}

#[test]
fn submitted_batches_are_bit_identical_to_fresh_queries() {
    for (name, graph) in generator_suite() {
        let index = QbsIndex::build(graph.clone(), QbsConfig::with_landmark_count(8));
        let pairs = mixed_workload(&graph, &index, 99);
        let requests: Vec<QueryRequest> = pairs
            .iter()
            .map(|&(u, v)| QueryRequest::path_graph(u, v).with_stats())
            .collect();
        for threads in [1usize, 3] {
            let engine = QueryEngine::with_threads(&index, threads).expect("engine");
            let outcomes = engine.submit(&requests);
            assert_eq!(outcomes.len(), pairs.len());
            for (&(u, v), outcome) in pairs.iter().zip(&outcomes) {
                let answer = outcome.answer().expect("in range");
                let fresh = index.query_with_stats(u, v).expect("fresh query");
                assert_eq!(
                    answer.path_graph, fresh.path_graph,
                    "{name}/threads={threads}: answer of ({u},{v})"
                );
                assert_eq!(
                    answer.stats, fresh.stats,
                    "{name}/threads={threads}: stats of ({u},{v})"
                );
            }
            // Distance-only batches agree with the materialised answers.
            let distance_requests: Vec<QueryRequest> = pairs
                .iter()
                .map(|&(u, v)| QueryRequest::distance(u, v))
                .collect();
            let distances = engine.submit(&distance_requests);
            for ((d, outcome), &(u, v)) in distances.iter().zip(&outcomes).zip(&pairs) {
                assert_eq!(
                    d.distance().expect("in range"),
                    outcome.answer().expect("in range").path_graph.distance(),
                    "{name}/threads={threads}: distance of ({u},{v})"
                );
            }
        }
    }
}

#[test]
fn workspace_answers_stay_exact_against_the_oracle() {
    // End-to-end exactness: the reused-workspace answers equal the
    // ground-truth double-BFS on a full generator family.
    let graph = barabasi_albert::generate(&BarabasiAlbertConfig {
        vertices: 200,
        edges_per_vertex: 3,
        seed: 5,
    });
    let index = QbsIndex::build(graph.clone(), QbsConfig::with_landmark_count(6));
    let oracle = GroundTruth::new(graph.clone());
    let pairs = QueryWorkload::sample(&graph, 150, 13);
    let mut ws = QueryWorkspace::new();
    for &(u, v) in pairs.pairs() {
        let got = index.query_with(&mut ws, u, v).expect("query").path_graph;
        assert_eq!(got, oracle.query(u, v), "pair ({u},{v})");
    }
}
