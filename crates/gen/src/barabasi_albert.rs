//! Barabási–Albert preferential attachment graphs.
//!
//! Preferential attachment produces the heavy-tailed degree distributions
//! with a small number of very high-degree hubs that characterise the social
//! and web networks in the paper's Table 1 (Youtube, WikiTalk, Baidu,
//! Twitter, ClueWeb09 all have a maximum degree 3–6 orders of magnitude
//! above the average). Those hubs are exactly what makes degree-based
//! landmark selection effective for QbS (§6.3), so this generator is the
//! primary stand-in for the social/web datasets in the catalog.

use rand::Rng;

use qbs_graph::{Graph, GraphBuilder, VertexId};

use crate::rng::seeded_rng;

/// Parameters of the Barabási–Albert model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BarabasiAlbertConfig {
    /// Total number of vertices.
    pub vertices: usize,
    /// Edges added per new vertex (`m` in the standard formulation).
    pub edges_per_vertex: usize,
    /// RNG seed.
    pub seed: u64,
}

/// Generates a Barabási–Albert graph.
///
/// The process starts from a small clique of `edges_per_vertex + 1` seed
/// vertices; every subsequent vertex attaches to `edges_per_vertex` distinct
/// existing vertices chosen proportionally to their current degree (the
/// standard "repeated endpoints" implementation that samples a uniform
/// position in the running edge-endpoint list).
pub fn generate(config: &BarabasiAlbertConfig) -> Graph {
    let n = config.vertices;
    let m = config.edges_per_vertex.max(1);
    let mut builder = GraphBuilder::with_capacity(n, n.saturating_mul(m));
    builder.reserve_vertices(n);
    let seed_vertices = (m + 1).min(n);
    if seed_vertices < 2 {
        return builder.build();
    }

    let mut rng = seeded_rng(config.seed);
    // `endpoints` holds every edge endpoint seen so far; sampling a uniform
    // element of it is sampling a vertex proportionally to its degree.
    let mut endpoints: Vec<VertexId> = Vec::with_capacity(2 * n * m);

    // Seed clique.
    for u in 0..seed_vertices {
        for v in (u + 1)..seed_vertices {
            builder.add_edge(u as VertexId, v as VertexId);
            endpoints.push(u as VertexId);
            endpoints.push(v as VertexId);
        }
    }

    let mut targets: Vec<VertexId> = Vec::with_capacity(m);
    for new in seed_vertices..n {
        targets.clear();
        // Choose m distinct targets by preferential attachment; fall back to
        // uniform choice if rejection takes too long on tiny graphs.
        let mut attempts = 0;
        while targets.len() < m && attempts < 50 * m {
            attempts += 1;
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if !targets.contains(&t) {
                targets.push(t);
            }
        }
        while targets.len() < m {
            let t = rng.gen_range(0..new) as VertexId;
            if !targets.contains(&t) {
                targets.push(t);
            }
        }
        for &t in &targets {
            builder.add_edge(new as VertexId, t);
            endpoints.push(new as VertexId);
            endpoints.push(t);
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbs_graph::components::is_connected;

    #[test]
    fn vertex_and_edge_counts_match_model() {
        let g = generate(&BarabasiAlbertConfig {
            vertices: 300,
            edges_per_vertex: 3,
            seed: 1,
        });
        assert_eq!(g.num_vertices(), 300);
        // Seed clique of 4 vertices (6 edges) + 3 per remaining vertex.
        assert_eq!(g.num_edges(), 6 + 3 * (300 - 4));
    }

    #[test]
    fn is_connected_and_deterministic() {
        let c = BarabasiAlbertConfig {
            vertices: 200,
            edges_per_vertex: 2,
            seed: 5,
        };
        let g = generate(&c);
        assert!(is_connected(&g));
        assert_eq!(g, generate(&c));
        assert_ne!(g, generate(&BarabasiAlbertConfig { seed: 6, ..c }));
    }

    #[test]
    fn produces_hub_vertices() {
        let g = generate(&BarabasiAlbertConfig {
            vertices: 2000,
            edges_per_vertex: 3,
            seed: 2,
        });
        // Preferential attachment should create hubs well above the average
        // degree (~6); this is the property QbS landmark selection exploits.
        assert!(g.max_degree() > 40, "max degree {}", g.max_degree());
        assert!(g.avg_degree() < 8.0);
    }

    #[test]
    fn no_multi_edges_or_self_loops() {
        let g = generate(&BarabasiAlbertConfig {
            vertices: 150,
            edges_per_vertex: 4,
            seed: 3,
        });
        for (u, v) in g.edges() {
            assert_ne!(u, v);
        }
        // New vertex attaches to *distinct* targets, so its degree at
        // insertion time is exactly m; final degree is at least m.
        assert!(g.vertices().skip(5).all(|v| g.degree(v) >= 4));
    }

    #[test]
    fn tiny_configurations_do_not_panic() {
        for n in 0..6 {
            let g = generate(&BarabasiAlbertConfig {
                vertices: n,
                edges_per_vertex: 2,
                seed: 0,
            });
            assert_eq!(g.num_vertices(), n);
        }
    }
}
