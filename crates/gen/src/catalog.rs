//! Scaled-down stand-ins for the 12 datasets of Table 1.
//!
//! The paper's evaluation uses 12 public real-world networks ranging from
//! Douban (0.2 M vertices) to ClueWeb09 (1.7 B vertices, 7.8 B edges). Those
//! graphs cannot be shipped or processed here, so each dataset is replaced
//! by a synthetic stand-in whose *qualitative* structure matches the
//! property the paper's analysis attributes to it:
//!
//! | Dataset | Paper characteristics | Stand-in generator |
//! |---|---|---|
//! | Douban | sparse social network, avg deg 4.2 | Barabási–Albert, m = 2 |
//! | DBLP | co-authorship, local clustering, avg deg 6.6 | Watts–Strogatz, k = 3 |
//! | Youtube | social, extreme hubs (max deg 28 754) | power law, γ = 2.2 |
//! | WikiTalk | communication, very skewed, avg deg 3.9 | power law, γ = 2.05 |
//! | Skitter | computer topology, avg deg 13 | Barabási–Albert, m = 6 |
//! | Baidu | web graph, skewed, avg deg 16 | power law, γ = 2.1 |
//! | LiveJournal | social with communities, avg deg 17.8 | planted partition |
//! | Orkut | dense social, avg deg 76 | Barabási–Albert, m = 20 |
//! | Twitter | extreme hubs (max deg ≈ 3 M), avg deg 57.7 | power law, γ = 1.95 |
//! | Friendster | even degree distribution, avg deg 55 | Erdős–Rényi |
//! | uk2007 | web graph, avg deg 62.8 | power law, γ = 2.1 |
//! | ClueWeb09 | huge sparse web crawl, avg deg 9.3, larger diameter | power law, γ = 2.4 |
//!
//! The densest datasets use a reduced average degree (documented per spec)
//! so that the full experiment suite stays laptop-friendly; the *relative*
//! ordering of dataset sizes and densities is preserved. Every stand-in is
//! restricted to its largest connected component, matching the paper's
//! assumption of a connected graph (§2).

use serde::{Deserialize, Serialize};

use qbs_graph::components::largest_component;
use qbs_graph::Graph;

use crate::barabasi_albert::{self, BarabasiAlbertConfig};
use crate::community::{self, PlantedPartitionConfig};
use crate::erdos_renyi::{self, ErdosRenyiConfig};
use crate::power_law::{self, PowerLawConfig};
use crate::rng::derive_seed;
use crate::watts_strogatz::{self, WattsStrogatzConfig};

/// Identifier of one of the 12 paper datasets.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum DatasetId {
    Douban,
    Dblp,
    Youtube,
    WikiTalk,
    Skitter,
    Baidu,
    LiveJournal,
    Orkut,
    Twitter,
    Friendster,
    Uk2007,
    ClueWeb09,
}

impl DatasetId {
    /// All 12 datasets in the order of Table 1.
    pub const ALL: [DatasetId; 12] = [
        DatasetId::Douban,
        DatasetId::Dblp,
        DatasetId::Youtube,
        DatasetId::WikiTalk,
        DatasetId::Skitter,
        DatasetId::Baidu,
        DatasetId::LiveJournal,
        DatasetId::Orkut,
        DatasetId::Twitter,
        DatasetId::Friendster,
        DatasetId::Uk2007,
        DatasetId::ClueWeb09,
    ];

    /// The two-letter abbreviation used in the paper's figures.
    pub fn abbrev(self) -> &'static str {
        match self {
            DatasetId::Douban => "DO",
            DatasetId::Dblp => "DB",
            DatasetId::Youtube => "YT",
            DatasetId::WikiTalk => "WK",
            DatasetId::Skitter => "SK",
            DatasetId::Baidu => "BA",
            DatasetId::LiveJournal => "LJ",
            DatasetId::Orkut => "OR",
            DatasetId::Twitter => "TW",
            DatasetId::Friendster => "FR",
            DatasetId::Uk2007 => "UK",
            DatasetId::ClueWeb09 => "CW",
        }
    }

    /// Human-readable dataset name.
    pub fn name(self) -> &'static str {
        match self {
            DatasetId::Douban => "Douban",
            DatasetId::Dblp => "DBLP",
            DatasetId::Youtube => "Youtube",
            DatasetId::WikiTalk => "WikiTalk",
            DatasetId::Skitter => "Skitter",
            DatasetId::Baidu => "Baidu",
            DatasetId::LiveJournal => "LiveJournal",
            DatasetId::Orkut => "Orkut",
            DatasetId::Twitter => "Twitter",
            DatasetId::Friendster => "Friendster",
            DatasetId::Uk2007 => "uk2007",
            DatasetId::ClueWeb09 => "ClueWeb09",
        }
    }

    /// The network type column of Table 1.
    pub fn network_type(self) -> &'static str {
        match self {
            DatasetId::Douban
            | DatasetId::Youtube
            | DatasetId::LiveJournal
            | DatasetId::Orkut
            | DatasetId::Twitter
            | DatasetId::Friendster => "social",
            DatasetId::Dblp => "co-authorship",
            DatasetId::WikiTalk => "communication",
            DatasetId::Skitter | DatasetId::ClueWeb09 => "computer",
            DatasetId::Baidu | DatasetId::Uk2007 => "web",
        }
    }
}

/// Size scale for the generated stand-ins.
///
/// The relative vertex-count multipliers of the 12 datasets are preserved
/// within a scale, so "ClueWeb09 is the largest, Douban the smallest" holds
/// at every scale exactly as in Table 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scale {
    /// ~0.3–3 k vertices per dataset; fast enough for unit tests.
    Tiny,
    /// ~1.5–15 k vertices; the default for `cargo test`-time experiments.
    Small,
    /// ~6–60 k vertices; used by the benchmark harness.
    Medium,
    /// ~25–250 k vertices; full experiment runs.
    Large,
}

impl Scale {
    /// Base vertex count multiplied by each dataset's relative size factor.
    pub fn base_vertices(self) -> usize {
        match self {
            Scale::Tiny => 300,
            Scale::Small => 1_500,
            Scale::Medium => 6_000,
            Scale::Large => 25_000,
        }
    }
}

/// The generative model backing a dataset stand-in.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum GeneratorKind {
    /// Barabási–Albert preferential attachment with `m` edges per vertex.
    BarabasiAlbert {
        /// Edges attached per new vertex.
        edges_per_vertex: usize,
    },
    /// Chung–Lu power-law model.
    PowerLaw {
        /// Average degree target.
        avg_degree: f64,
        /// Power-law exponent.
        exponent: f64,
    },
    /// Watts–Strogatz small world.
    WattsStrogatz {
        /// Lattice neighbours per side.
        neighbors: usize,
        /// Rewiring probability.
        rewire: f64,
    },
    /// Erdős–Rényi `G(n, m)` with the given average degree.
    ErdosRenyi {
        /// Average degree target.
        avg_degree: f64,
    },
    /// Planted partition model.
    Community {
        /// Number of communities (vertices are split evenly).
        communities: usize,
        /// Expected intra-community degree.
        intra_degree: f64,
        /// Expected inter-community degree.
        inter_degree: f64,
    },
}

/// Full description of one dataset stand-in.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Which Table 1 dataset this stands in for.
    pub id: DatasetId,
    /// Relative size factor (Douban = 1.0, ClueWeb09 the largest).
    pub size_factor: f64,
    /// The generator used.
    pub generator: GeneratorKind,
    /// Base RNG seed (combined with the scale for the final seed).
    pub seed: u64,
}

impl DatasetSpec {
    /// Number of vertices the stand-in will have (before restriction to the
    /// largest connected component) at the given scale.
    pub fn target_vertices(&self, scale: Scale) -> usize {
        ((scale.base_vertices() as f64) * self.size_factor).round() as usize
    }

    /// Generates the stand-in graph at the given scale, restricted to its
    /// largest connected component.
    pub fn generate(&self, scale: Scale) -> Graph {
        let n = self.target_vertices(scale).max(8);
        let seed = derive_seed(self.seed, scale.base_vertices() as u64);
        let raw = match self.generator {
            GeneratorKind::BarabasiAlbert { edges_per_vertex } => {
                barabasi_albert::generate(&BarabasiAlbertConfig {
                    vertices: n,
                    edges_per_vertex,
                    seed,
                })
            }
            GeneratorKind::PowerLaw {
                avg_degree,
                exponent,
            } => power_law::generate(&PowerLawConfig {
                vertices: n,
                edges: ((n as f64) * avg_degree / 2.0).round() as usize,
                exponent,
                seed,
            }),
            GeneratorKind::WattsStrogatz { neighbors, rewire } => {
                watts_strogatz::generate(&WattsStrogatzConfig {
                    vertices: n,
                    neighbors,
                    rewire_probability: rewire,
                    seed,
                })
            }
            GeneratorKind::ErdosRenyi { avg_degree } => erdos_renyi::generate(&ErdosRenyiConfig {
                vertices: n,
                edges: ((n as f64) * avg_degree / 2.0).round() as usize,
                seed,
            }),
            GeneratorKind::Community {
                communities,
                intra_degree,
                inter_degree,
            } => community::generate(&PlantedPartitionConfig {
                communities,
                community_size: (n / communities).max(1),
                intra_degree,
                inter_degree,
                seed,
            }),
        };
        largest_component(&raw).0
    }
}

/// The catalog of all 12 dataset stand-ins.
#[derive(Clone, Debug)]
pub struct Catalog {
    specs: Vec<DatasetSpec>,
}

impl Default for Catalog {
    fn default() -> Self {
        Self::paper_table1()
    }
}

impl Catalog {
    /// The catalog mirroring Table 1 of the paper.
    ///
    /// Size factors follow the relative |V| ordering of Table 1 (compressed
    /// into a 1×–12× range so every scale stays laptop-friendly); dense
    /// datasets use a reduced average degree, as documented in the module
    /// docs and DESIGN.md.
    pub fn paper_table1() -> Self {
        use DatasetId::*;
        use GeneratorKind::*;
        let specs = vec![
            DatasetSpec {
                id: Douban,
                size_factor: 1.0,
                generator: BarabasiAlbert {
                    edges_per_vertex: 2,
                },
                seed: 0xD0,
            },
            DatasetSpec {
                id: Dblp,
                size_factor: 1.5,
                generator: WattsStrogatz {
                    neighbors: 3,
                    rewire: 0.15,
                },
                seed: 0xDB,
            },
            DatasetSpec {
                id: Youtube,
                size_factor: 3.5,
                generator: PowerLaw {
                    avg_degree: 5.3,
                    exponent: 2.2,
                },
                seed: 0x17,
            },
            DatasetSpec {
                id: WikiTalk,
                size_factor: 4.5,
                generator: PowerLaw {
                    avg_degree: 3.9,
                    exponent: 2.05,
                },
                seed: 0x3A,
            },
            DatasetSpec {
                id: Skitter,
                size_factor: 4.0,
                generator: BarabasiAlbert {
                    edges_per_vertex: 6,
                },
                seed: 0x5C,
            },
            DatasetSpec {
                id: Baidu,
                size_factor: 4.2,
                generator: PowerLaw {
                    avg_degree: 15.9,
                    exponent: 2.1,
                },
                seed: 0xBA,
            },
            DatasetSpec {
                id: LiveJournal,
                size_factor: 5.0,
                generator: Community {
                    communities: 24,
                    intra_degree: 14.0,
                    inter_degree: 4.0,
                },
                seed: 0x13,
            },
            DatasetSpec {
                id: Orkut,
                size_factor: 4.5,
                generator: BarabasiAlbert {
                    edges_per_vertex: 20,
                },
                seed: 0x08,
            },
            DatasetSpec {
                id: Twitter,
                size_factor: 7.0,
                generator: PowerLaw {
                    avg_degree: 28.0,
                    exponent: 1.95,
                },
                seed: 0x7E,
            },
            DatasetSpec {
                id: Friendster,
                size_factor: 8.0,
                generator: ErdosRenyi { avg_degree: 24.0 },
                seed: 0xF2,
            },
            DatasetSpec {
                id: Uk2007,
                size_factor: 9.0,
                generator: PowerLaw {
                    avg_degree: 26.0,
                    exponent: 2.1,
                },
                seed: 0x07,
            },
            DatasetSpec {
                id: ClueWeb09,
                size_factor: 12.0,
                generator: PowerLaw {
                    avg_degree: 9.3,
                    exponent: 2.4,
                },
                seed: 0xC9,
            },
        ];
        Catalog { specs }
    }

    /// A reduced catalog with one representative per structural family
    /// (hub-dominated, clustered, community, even-degree), used by fast
    /// tests and ablations.
    pub fn representative() -> Self {
        let full = Self::paper_table1();
        let keep = [
            DatasetId::Douban,
            DatasetId::Dblp,
            DatasetId::LiveJournal,
            DatasetId::Friendster,
        ];
        Catalog {
            specs: full
                .specs
                .into_iter()
                .filter(|s| keep.contains(&s.id))
                .collect(),
        }
    }

    /// All specs in Table 1 order.
    pub fn specs(&self) -> &[DatasetSpec] {
        &self.specs
    }

    /// Looks up a dataset by id.
    pub fn get(&self, id: DatasetId) -> Option<&DatasetSpec> {
        self.specs.iter().find(|s| s.id == id)
    }

    /// Number of datasets in the catalog.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbs_graph::components::is_connected;

    #[test]
    fn catalog_has_all_twelve_datasets_in_order() {
        let c = Catalog::paper_table1();
        assert_eq!(c.len(), 12);
        let ids: Vec<_> = c.specs().iter().map(|s| s.id).collect();
        assert_eq!(ids, DatasetId::ALL.to_vec());
        assert!(!c.is_empty());
    }

    #[test]
    fn abbreviations_match_the_paper() {
        assert_eq!(DatasetId::Douban.abbrev(), "DO");
        assert_eq!(DatasetId::ClueWeb09.abbrev(), "CW");
        assert_eq!(DatasetId::Uk2007.name(), "uk2007");
        assert_eq!(DatasetId::WikiTalk.network_type(), "communication");
    }

    #[test]
    fn size_ordering_follows_table1() {
        let c = Catalog::paper_table1();
        let douban = c.get(DatasetId::Douban).unwrap();
        let clueweb = c.get(DatasetId::ClueWeb09).unwrap();
        assert!(clueweb.size_factor > douban.size_factor);
        assert!(clueweb.target_vertices(Scale::Tiny) > douban.target_vertices(Scale::Tiny));
        assert!(douban.target_vertices(Scale::Large) > douban.target_vertices(Scale::Tiny));
    }

    #[test]
    fn every_tiny_standin_is_connected_and_nonempty() {
        for spec in Catalog::paper_table1().specs() {
            let g = spec.generate(Scale::Tiny);
            assert!(
                g.num_vertices() > 50,
                "{:?} too small: {}",
                spec.id,
                g.num_vertices()
            );
            assert!(is_connected(&g), "{:?} not connected", spec.id);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let c = Catalog::paper_table1();
        let spec = c.get(DatasetId::Youtube).unwrap();
        assert_eq!(spec.generate(Scale::Tiny), spec.generate(Scale::Tiny));
    }

    #[test]
    fn hub_datasets_have_bigger_hubs_than_friendster() {
        let c = Catalog::paper_table1();
        let twitter = c.get(DatasetId::Twitter).unwrap().generate(Scale::Tiny);
        let friendster = c.get(DatasetId::Friendster).unwrap().generate(Scale::Tiny);
        // Normalise by average degree: Twitter's hubs dominate, Friendster's
        // degrees are even — the §6.3 contrast the experiments rely on.
        let twitter_skew = twitter.max_degree() as f64 / twitter.avg_degree();
        let friendster_skew = friendster.max_degree() as f64 / friendster.avg_degree();
        assert!(
            twitter_skew > 3.0 * friendster_skew,
            "twitter skew {twitter_skew:.1} vs friendster {friendster_skew:.1}"
        );
    }

    #[test]
    fn representative_catalog_is_a_subset() {
        let rep = Catalog::representative();
        assert_eq!(rep.len(), 4);
        let full = Catalog::paper_table1();
        for s in rep.specs() {
            assert!(full.get(s.id).is_some());
        }
    }

    #[test]
    fn get_returns_none_for_missing_dataset() {
        let rep = Catalog::representative();
        assert!(rep.get(DatasetId::Twitter).is_none());
    }
}
