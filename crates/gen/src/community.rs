//! Planted-partition (stochastic block model) graphs.
//!
//! Social networks such as Douban, LiveJournal and Orkut exhibit community
//! structure: dense groups sparsely connected to each other. The planted
//! partition model reproduces that structure with a handful of parameters
//! and is used by the catalog for the community-heavy social datasets. The
//! community structure matters for QbS because shortest paths between
//! communities funnel through the sparse inter-community edges, similar to
//! how they funnel through hubs in hub-dominated graphs.

use rand::Rng;

use qbs_graph::{Graph, GraphBuilder, VertexId};

use crate::rng::seeded_rng;

/// Parameters of the planted-partition model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PlantedPartitionConfig {
    /// Number of communities.
    pub communities: usize,
    /// Vertices per community.
    pub community_size: usize,
    /// Expected number of intra-community edges per vertex.
    pub intra_degree: f64,
    /// Expected number of inter-community edges per vertex.
    pub inter_degree: f64,
    /// RNG seed.
    pub seed: u64,
}

impl PlantedPartitionConfig {
    /// Total number of vertices described by the configuration.
    pub fn total_vertices(&self) -> usize {
        self.communities * self.community_size
    }
}

/// Generates a planted-partition graph by sampling the expected number of
/// intra- and inter-community edges uniformly at random.
pub fn generate(config: &PlantedPartitionConfig) -> Graph {
    let n = config.total_vertices();
    let mut builder = GraphBuilder::with_capacity(n, n * 4);
    builder.reserve_vertices(n);
    if n < 2 || config.communities == 0 || config.community_size < 1 {
        return builder.build();
    }
    let mut rng = seeded_rng(config.seed);
    let k = config.community_size;

    // Intra-community edges.
    let intra_edges_per_community =
        ((config.intra_degree * k as f64) / 2.0).round().max(0.0) as usize;
    for c in 0..config.communities {
        let base = (c * k) as VertexId;
        if k < 2 {
            continue;
        }
        for _ in 0..intra_edges_per_community {
            let u = base + rng.gen_range(0..k) as VertexId;
            let v = base + rng.gen_range(0..k) as VertexId;
            if u != v {
                builder.add_edge(u, v);
            }
        }
    }

    // Inter-community edges.
    let inter_edges_total = ((config.inter_degree * n as f64) / 2.0).round().max(0.0) as usize;
    if config.communities > 1 {
        for _ in 0..inter_edges_total {
            let cu = rng.gen_range(0..config.communities);
            let mut cv = rng.gen_range(0..config.communities);
            let mut guard = 0;
            while cv == cu && guard < 8 {
                cv = rng.gen_range(0..config.communities);
                guard += 1;
            }
            if cv == cu {
                continue;
            }
            let u = (cu * k + rng.gen_range(0..k)) as VertexId;
            let v = (cv * k + rng.gen_range(0..k)) as VertexId;
            builder.add_edge(u, v);
        }
    }
    builder.build()
}

/// Community id of a vertex under the configuration's layout.
pub fn community_of(config: &PlantedPartitionConfig, v: VertexId) -> usize {
    (v as usize) / config.community_size.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> PlantedPartitionConfig {
        PlantedPartitionConfig {
            communities: 8,
            community_size: 100,
            intra_degree: 8.0,
            inter_degree: 1.0,
            seed: 21,
        }
    }

    #[test]
    fn produces_expected_vertex_count() {
        let g = generate(&config());
        assert_eq!(g.num_vertices(), 800);
        assert!(g.num_edges() > 2000);
    }

    #[test]
    fn intra_community_edges_dominate() {
        let c = config();
        let g = generate(&c);
        let (mut intra, mut inter) = (0usize, 0usize);
        for (u, v) in g.edges() {
            if community_of(&c, u) == community_of(&c, v) {
                intra += 1;
            } else {
                inter += 1;
            }
        }
        assert!(intra > 3 * inter, "intra {intra} inter {inter}");
    }

    #[test]
    fn deterministic_per_seed() {
        let c = config();
        assert_eq!(generate(&c), generate(&c));
        assert_ne!(
            generate(&c),
            generate(&PlantedPartitionConfig { seed: 99, ..c })
        );
    }

    #[test]
    fn community_of_maps_vertices_to_blocks() {
        let c = config();
        assert_eq!(community_of(&c, 0), 0);
        assert_eq!(community_of(&c, 99), 0);
        assert_eq!(community_of(&c, 100), 1);
        assert_eq!(community_of(&c, 799), 7);
    }

    #[test]
    fn degenerate_configurations_do_not_panic() {
        let g = generate(&PlantedPartitionConfig {
            communities: 0,
            community_size: 10,
            intra_degree: 2.0,
            inter_degree: 1.0,
            seed: 0,
        });
        assert_eq!(g.num_vertices(), 0);
        let g = generate(&PlantedPartitionConfig {
            communities: 3,
            community_size: 1,
            intra_degree: 2.0,
            inter_degree: 1.0,
            seed: 0,
        });
        assert_eq!(g.num_vertices(), 3);
    }

    #[test]
    fn single_community_has_no_inter_edges() {
        let c = PlantedPartitionConfig {
            communities: 1,
            community_size: 50,
            intra_degree: 4.0,
            inter_degree: 10.0,
            seed: 2,
        };
        let g = generate(&c);
        assert_eq!(g.num_vertices(), 50);
        for (u, v) in g.edges() {
            assert_eq!(community_of(&c, u), community_of(&c, v));
        }
    }
}
