//! Erdős–Rényi `G(n, m)` random graphs.
//!
//! Erdős–Rényi graphs have a binomial (nearly regular) degree distribution
//! with no dominant hubs. In the catalog they model the *Friendster-like*
//! regime where, as §6.3 observes, "the degrees of vertices are more evenly
//! distributed; hence, landmarks hardly capture all shortest paths" and the
//! pair-coverage ratio of QbS is low.

use rand::Rng;

use qbs_graph::{Graph, GraphBuilder, VertexId};

use crate::rng::seeded_rng;

/// Parameters for the `G(n, m)` model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ErdosRenyiConfig {
    /// Number of vertices.
    pub vertices: usize,
    /// Number of undirected edges to sample (duplicates are retried, so the
    /// built graph has exactly this many edges when that is possible).
    pub edges: usize,
    /// RNG seed.
    pub seed: u64,
}

/// Generates a `G(n, m)` graph: `m` distinct edges chosen uniformly among
/// all vertex pairs.
///
/// # Panics
///
/// Panics if `edges` exceeds the number of available vertex pairs.
pub fn generate(config: &ErdosRenyiConfig) -> Graph {
    let n = config.vertices;
    let max_edges = n.saturating_mul(n.saturating_sub(1)) / 2;
    assert!(
        config.edges <= max_edges,
        "cannot place {} edges in a simple graph with {} vertices",
        config.edges,
        n
    );
    let mut rng = seeded_rng(config.seed);
    let mut builder = GraphBuilder::with_capacity(n, config.edges);
    builder.reserve_vertices(n);
    if n < 2 {
        return builder.build();
    }

    let mut chosen = std::collections::HashSet::with_capacity(config.edges * 2);
    while chosen.len() < config.edges {
        let u = rng.gen_range(0..n) as VertexId;
        let v = rng.gen_range(0..n) as VertexId;
        if u == v {
            continue;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if chosen.insert(key) {
            builder.add_edge(key.0, key.1);
        }
    }
    builder.build()
}

/// Generates a `G(n, p)` graph by converting the edge probability into an
/// expected edge count and delegating to the `G(n, m)` sampler. This keeps
/// generation `O(m)` instead of `O(n²)` for the sparse graphs used in the
/// experiments.
pub fn generate_gnp(vertices: usize, p: f64, seed: u64) -> Graph {
    assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
    let max_edges = vertices.saturating_mul(vertices.saturating_sub(1)) / 2;
    let edges = ((max_edges as f64) * p).round() as usize;
    generate(&ErdosRenyiConfig {
        vertices,
        edges: edges.min(max_edges),
        seed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_exact_edge_count() {
        let g = generate(&ErdosRenyiConfig {
            vertices: 100,
            edges: 250,
            seed: 1,
        });
        assert_eq!(g.num_vertices(), 100);
        assert_eq!(g.num_edges(), 250);
    }

    #[test]
    fn is_deterministic_per_seed() {
        let c = ErdosRenyiConfig {
            vertices: 80,
            edges: 200,
            seed: 9,
        };
        assert_eq!(generate(&c), generate(&c));
        let other = generate(&ErdosRenyiConfig { seed: 10, ..c });
        assert_ne!(generate(&c), other);
    }

    #[test]
    fn no_self_loops_or_duplicates() {
        let g = generate(&ErdosRenyiConfig {
            vertices: 50,
            edges: 300,
            seed: 3,
        });
        for (u, v) in g.edges() {
            assert_ne!(u, v);
        }
        let edges: Vec<_> = g.edges().collect();
        let mut dedup = edges.clone();
        dedup.dedup();
        assert_eq!(edges, dedup);
    }

    #[test]
    fn handles_tiny_graphs() {
        let g = generate(&ErdosRenyiConfig {
            vertices: 1,
            edges: 0,
            seed: 0,
        });
        assert_eq!(g.num_vertices(), 1);
        assert_eq!(g.num_edges(), 0);
        let g = generate(&ErdosRenyiConfig {
            vertices: 0,
            edges: 0,
            seed: 0,
        });
        assert_eq!(g.num_vertices(), 0);
    }

    #[test]
    fn complete_graph_when_all_edges_requested() {
        let g = generate(&ErdosRenyiConfig {
            vertices: 6,
            edges: 15,
            seed: 5,
        });
        assert_eq!(g.num_edges(), 15);
        assert_eq!(g.max_degree(), 5);
    }

    #[test]
    #[should_panic(expected = "cannot place")]
    fn rejects_too_many_edges() {
        generate(&ErdosRenyiConfig {
            vertices: 4,
            edges: 7,
            seed: 0,
        });
    }

    #[test]
    fn gnp_respects_probability_extremes() {
        let empty = generate_gnp(30, 0.0, 1);
        assert_eq!(empty.num_edges(), 0);
        let full = generate_gnp(10, 1.0, 1);
        assert_eq!(full.num_edges(), 45);
    }

    #[test]
    fn degree_distribution_has_no_dominant_hub() {
        // With 2000 edges among 500 vertices the expected degree is 8;
        // a hub 10x the average would indicate a broken sampler.
        let g = generate(&ErdosRenyiConfig {
            vertices: 500,
            edges: 2000,
            seed: 11,
        });
        assert!(g.max_degree() < 40, "max degree {}", g.max_degree());
    }
}
