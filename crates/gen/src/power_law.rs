//! Chung–Lu power-law random graphs.
//!
//! The Chung–Lu model assigns each vertex an expected degree drawn from a
//! power law `w_i ∝ (i + i0)^(-1/(γ-1))` and inserts each edge `{u, v}` with
//! probability proportional to `w_u · w_v`. Compared to Barabási–Albert it
//! gives direct control over the exponent and over how extreme the largest
//! hubs are, which the catalog uses to mimic the very skewed web graphs
//! (Baidu, uk2007, ClueWeb09) whose maximum degrees reach into the millions
//! in Table 1 while the average degree stays modest.

use rand::Rng;

use qbs_graph::{Graph, GraphBuilder, VertexId};

use crate::rng::seeded_rng;

/// Parameters of the Chung–Lu power-law model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PowerLawConfig {
    /// Number of vertices.
    pub vertices: usize,
    /// Target number of undirected edges (approximate; duplicates collapse).
    pub edges: usize,
    /// Power-law exponent `γ` of the degree distribution (typically 2–3 for
    /// real complex networks; smaller means heavier tail).
    pub exponent: f64,
    /// RNG seed.
    pub seed: u64,
}

/// Generates a Chung–Lu power-law graph by sampling both endpoints of every
/// edge from the weight distribution (the "fast Chung–Lu" construction).
pub fn generate(config: &PowerLawConfig) -> Graph {
    assert!(config.exponent > 1.0, "power-law exponent must exceed 1");
    let n = config.vertices;
    let mut builder = GraphBuilder::with_capacity(n, config.edges);
    builder.reserve_vertices(n);
    if n < 2 || config.edges == 0 {
        return builder.build();
    }
    let mut rng = seeded_rng(config.seed);

    // Weights w_i = (i + i0)^(-1/(γ-1)), i0 shifts the head so the largest
    // hub does not swallow the whole edge budget.
    let alpha = 1.0 / (config.exponent - 1.0);
    let i0 = 1.0_f64;
    let weights: Vec<f64> = (0..n).map(|i| (i as f64 + i0).powf(-alpha)).collect();

    // Cumulative distribution for endpoint sampling.
    let mut cumulative = Vec::with_capacity(n);
    let mut total = 0.0;
    for &w in &weights {
        total += w;
        cumulative.push(total);
    }

    let sample = |rng: &mut rand::rngs::SmallRng| -> VertexId {
        let x = rng.gen_range(0.0..total);
        match cumulative.binary_search_by(|probe| probe.partial_cmp(&x).expect("finite")) {
            Ok(idx) | Err(idx) => (idx.min(n - 1)) as VertexId,
        }
    };

    // Sample ~edges pairs; the builder collapses duplicates so the final
    // count is slightly below the target, as in any Chung–Lu sampler.
    for _ in 0..config.edges {
        let u = sample(&mut rng);
        let v = sample(&mut rng);
        if u != v {
            builder.add_edge(u, v);
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(n: usize, m: usize, gamma: f64) -> PowerLawConfig {
        PowerLawConfig {
            vertices: n,
            edges: m,
            exponent: gamma,
            seed: 17,
        }
    }

    #[test]
    fn approximates_requested_edge_count() {
        let g = generate(&config(3000, 12000, 2.5));
        assert_eq!(g.num_vertices(), 3000);
        // Duplicate collapses lose some edges but not the bulk of them.
        assert!(g.num_edges() > 8000, "got {}", g.num_edges());
        assert!(g.num_edges() <= 12000);
    }

    #[test]
    fn lower_exponent_gives_bigger_hubs() {
        let heavy = generate(&config(3000, 12000, 2.0));
        let light = generate(&config(3000, 12000, 3.5));
        assert!(
            heavy.max_degree() > light.max_degree(),
            "heavy {} vs light {}",
            heavy.max_degree(),
            light.max_degree()
        );
    }

    #[test]
    fn hubs_are_low_indexed_vertices() {
        let g = generate(&config(2000, 10000, 2.2));
        let landmarks = g.top_k_by_degree(10);
        // Weight is decreasing in the vertex id, so the biggest hubs should
        // be among the smallest ids.
        assert!(
            landmarks.iter().all(|&v| v < 200),
            "landmarks {landmarks:?}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let c = config(500, 2000, 2.3);
        assert_eq!(generate(&c), generate(&c));
        assert_ne!(generate(&c), generate(&PowerLawConfig { seed: 18, ..c }));
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(generate(&config(0, 0, 2.5)).num_vertices(), 0);
        assert_eq!(generate(&config(1, 0, 2.5)).num_edges(), 0);
        assert_eq!(generate(&config(10, 0, 2.5)).num_edges(), 0);
    }

    #[test]
    #[should_panic(expected = "exponent")]
    fn rejects_invalid_exponent() {
        generate(&config(10, 5, 1.0));
    }
}
