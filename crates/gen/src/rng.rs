//! Deterministic random number generation.
//!
//! All generators and workloads derive their randomness from a caller-given
//! `u64` seed through [`seeded_rng`], so every graph and every query workload
//! in the experiment harness is reproducible bit-for-bit across runs and
//! platforms.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Creates a small, fast, deterministic RNG from a `u64` seed.
///
/// The seed is mixed through SplitMix64 before seeding so that adjacent
/// seeds (0, 1, 2, …) — the natural choice in parameter sweeps — do not
/// produce correlated streams.
pub fn seeded_rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(splitmix64(seed))
}

/// One round of the SplitMix64 mixing function.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives an independent sub-seed from a base seed and a stream index,
/// used when one experiment needs several uncorrelated RNG streams.
pub fn derive_seed(base: u64, stream: u64) -> u64 {
    splitmix64(base ^ stream.wrapping_mul(0xA24B_AED4_963E_E407))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_gives_same_stream() {
        let mut a = seeded_rng(42);
        let mut b = seeded_rng(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_give_different_streams() {
        let mut a = seeded_rng(1);
        let mut b = seeded_rng(2);
        let same = (0..32).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4);
    }

    #[test]
    fn splitmix_is_not_identity_and_is_deterministic() {
        assert_ne!(splitmix64(0), 0);
        assert_eq!(splitmix64(12345), splitmix64(12345));
        assert_ne!(splitmix64(1), splitmix64(2));
    }

    #[test]
    fn derived_seeds_differ_per_stream() {
        let s0 = derive_seed(7, 0);
        let s1 = derive_seed(7, 1);
        let s2 = derive_seed(8, 0);
        assert_ne!(s0, s1);
        assert_ne!(s0, s2);
        assert_eq!(derive_seed(7, 1), s1);
    }
}
