//! Deterministic structured graphs: paths, cycles, grids, stars, trees and
//! cliques.
//!
//! These are not models of real networks; they are the adversarial and
//! best-case inputs used by unit, property and ablation tests because their
//! shortest-path structure is known in closed form (e.g. a grid has a
//! combinatorially large number of shortest paths between opposite corners,
//! a star routes every shortest path through the hub, a tree has exactly one
//! shortest path per pair).

use qbs_graph::{Graph, GraphBuilder, VertexId};

/// A path graph `0 - 1 - … - (n-1)`.
pub fn path(n: usize) -> Graph {
    let mut b = GraphBuilder::with_capacity(n, n.saturating_sub(1));
    b.reserve_vertices(n);
    for v in 1..n {
        b.add_edge((v - 1) as VertexId, v as VertexId);
    }
    b.build()
}

/// A cycle graph on `n >= 3` vertices (for smaller `n` it degrades to a path).
pub fn cycle(n: usize) -> Graph {
    let mut b = GraphBuilder::with_capacity(n, n);
    b.reserve_vertices(n);
    for v in 1..n {
        b.add_edge((v - 1) as VertexId, v as VertexId);
    }
    if n >= 3 {
        b.add_edge((n - 1) as VertexId, 0);
    }
    b.build()
}

/// A complete graph `K_n`.
pub fn complete(n: usize) -> Graph {
    let mut b = GraphBuilder::with_capacity(n, n * n / 2);
    b.reserve_vertices(n);
    for u in 0..n {
        for v in (u + 1)..n {
            b.add_edge(u as VertexId, v as VertexId);
        }
    }
    b.build()
}

/// A star: vertex 0 is the hub adjacent to every other vertex.
pub fn star(n: usize) -> Graph {
    let mut b = GraphBuilder::with_capacity(n, n.saturating_sub(1));
    b.reserve_vertices(n);
    for v in 1..n {
        b.add_edge(0, v as VertexId);
    }
    b.build()
}

/// A `rows × cols` grid; vertex `(r, c)` has id `r * cols + c`.
pub fn grid(rows: usize, cols: usize) -> Graph {
    let n = rows * cols;
    let mut b = GraphBuilder::with_capacity(n, 2 * n);
    b.reserve_vertices(n);
    let id = |r: usize, c: usize| (r * cols + c) as VertexId;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(id(r, c), id(r, c + 1));
            }
            if r + 1 < rows {
                b.add_edge(id(r, c), id(r + 1, c));
            }
        }
    }
    b.build()
}

/// A complete binary tree with `n` vertices; vertex `v`'s children are
/// `2v + 1` and `2v + 2`.
pub fn binary_tree(n: usize) -> Graph {
    let mut b = GraphBuilder::with_capacity(n, n.saturating_sub(1));
    b.reserve_vertices(n);
    for v in 1..n {
        b.add_edge(((v - 1) / 2) as VertexId, v as VertexId);
    }
    b.build()
}

/// A "barbell": two cliques of size `k` connected by a path of length
/// `bridge + 1`. Useful for exercising long bidirectional searches with a
/// unique bottleneck path.
pub fn barbell(k: usize, bridge: usize) -> Graph {
    let n = 2 * k + bridge;
    let mut b = GraphBuilder::with_capacity(n, k * k + bridge + 2);
    b.reserve_vertices(n);
    // Left clique 0..k, right clique (k+bridge)..n.
    for u in 0..k {
        for v in (u + 1)..k {
            b.add_edge(u as VertexId, v as VertexId);
        }
    }
    let right = k + bridge;
    for u in right..n {
        for v in (u + 1)..n {
            b.add_edge(u as VertexId, v as VertexId);
        }
    }
    // Bridge path k-1 -> k -> k+1 -> ... -> right.
    if k > 0 && n > k {
        let mut prev = k - 1;
        for v in k..=right.min(n - 1) {
            b.add_edge(prev as VertexId, v as VertexId);
            prev = v;
        }
    }
    b.build()
}

/// The hypercube `Q_d` with `2^d` vertices: between two vertices at Hamming
/// distance `h` there are exactly `h!` shortest paths, which stress-tests
/// shortest-path-graph correctness on pair with many shortest paths.
pub fn hypercube(dimensions: u32) -> Graph {
    let n = 1usize << dimensions;
    let mut b = GraphBuilder::with_capacity(n, n * dimensions as usize / 2);
    b.reserve_vertices(n);
    for u in 0..n {
        for bit in 0..dimensions {
            let v = u ^ (1 << bit);
            if u < v {
                b.add_edge(u as VertexId, v as VertexId);
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbs_graph::components::is_connected;
    use qbs_graph::traversal::{bfs_distances, shortest_path_dag};

    #[test]
    fn path_and_cycle_shapes() {
        let p = path(5);
        assert_eq!(p.num_edges(), 4);
        assert_eq!(bfs_distances(&p, 0)[4], 4);

        let c = cycle(6);
        assert_eq!(c.num_edges(), 6);
        assert_eq!(bfs_distances(&c, 0)[3], 3);
        // Opposite vertices on an even cycle have two shortest paths.
        assert_eq!(shortest_path_dag(&c, 0).count_paths_to(3), 2);
    }

    #[test]
    fn complete_and_star_shapes() {
        let k = complete(6);
        assert_eq!(k.num_edges(), 15);
        assert!(k.vertices().all(|v| k.degree(v) == 5));

        let s = star(10);
        assert_eq!(s.num_edges(), 9);
        assert_eq!(s.degree(0), 9);
        assert_eq!(bfs_distances(&s, 1)[9], 2);
    }

    #[test]
    fn grid_distances_are_manhattan() {
        let g = grid(4, 5);
        assert_eq!(g.num_vertices(), 20);
        let d = bfs_distances(&g, 0);
        assert_eq!(d[19], 3 + 4);
        // Number of shortest paths corner-to-corner is C(7,3) = 35.
        assert_eq!(shortest_path_dag(&g, 0).count_paths_to(19), 35);
    }

    #[test]
    fn binary_tree_is_connected_acyclic() {
        let t = binary_tree(31);
        assert_eq!(t.num_edges(), 30);
        assert!(is_connected(&t));
        assert_eq!(bfs_distances(&t, 0)[30], 4);
    }

    #[test]
    fn barbell_routes_through_the_bridge() {
        let g = barbell(5, 3);
        assert_eq!(g.num_vertices(), 13);
        assert!(is_connected(&g));
        // Far corner to far corner: one hop into the bridge entrance,
        // bridge + 1 hops across, one hop to the far clique vertex.
        let d = bfs_distances(&g, 0);
        assert_eq!(d[12], 3 + 3);
    }

    #[test]
    fn hypercube_path_counts_are_factorial() {
        let q = hypercube(4);
        assert_eq!(q.num_vertices(), 16);
        assert_eq!(q.num_edges(), 32);
        let dag = shortest_path_dag(&q, 0);
        assert_eq!(dag.dist[0b1111], 4);
        assert_eq!(dag.count_paths_to(0b1111), 24);
    }

    #[test]
    fn degenerate_sizes_do_not_panic() {
        for n in 0..3 {
            assert_eq!(path(n).num_vertices(), n);
            assert_eq!(star(n).num_vertices(), n);
            assert_eq!(complete(n).num_vertices(), n);
            assert_eq!(binary_tree(n).num_vertices(), n);
        }
        assert_eq!(grid(0, 5).num_vertices(), 0);
        assert_eq!(hypercube(0).num_vertices(), 1);
    }
}
