//! Watts–Strogatz small-world graphs.
//!
//! The Watts–Strogatz model starts from a ring lattice (high clustering,
//! large diameter) and rewires a fraction of edges to random targets, which
//! collapses the diameter while keeping local clustering — the "small
//! diameter and local clustering" structure that §1 of the paper names as
//! the defining property of complex networks. The catalog uses it for the
//! co-authorship (DBLP-like) and computer-network (Skitter-like) stand-ins.

use rand::Rng;

use qbs_graph::{Graph, GraphBuilder, VertexId};

use crate::rng::seeded_rng;

/// Parameters of the Watts–Strogatz model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WattsStrogatzConfig {
    /// Number of vertices arranged on a ring.
    pub vertices: usize,
    /// Each vertex connects to `neighbors` nearest neighbours on each side
    /// (so the lattice degree is `2 * neighbors`).
    pub neighbors: usize,
    /// Probability of rewiring each lattice edge to a random target.
    pub rewire_probability: f64,
    /// RNG seed.
    pub seed: u64,
}

/// Generates a Watts–Strogatz small-world graph.
pub fn generate(config: &WattsStrogatzConfig) -> Graph {
    assert!(
        (0.0..=1.0).contains(&config.rewire_probability),
        "rewire probability must be in [0, 1]"
    );
    let n = config.vertices;
    let k = config.neighbors;
    let mut builder = GraphBuilder::with_capacity(n, n * k);
    builder.reserve_vertices(n);
    if n < 3 || k == 0 {
        return builder.build();
    }
    let mut rng = seeded_rng(config.seed);

    for u in 0..n {
        for offset in 1..=k {
            let v = (u + offset) % n;
            if u as VertexId == v as VertexId {
                continue;
            }
            if rng.gen_bool(config.rewire_probability) {
                // Rewire: keep u, pick a random non-self target.
                let mut w = rng.gen_range(0..n);
                let mut guard = 0;
                while w == u && guard < 16 {
                    w = rng.gen_range(0..n);
                    guard += 1;
                }
                if w != u {
                    builder.add_edge(u as VertexId, w as VertexId);
                }
            } else {
                builder.add_edge(u as VertexId, v as VertexId);
            }
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbs_graph::traversal::eccentricity;

    #[test]
    fn zero_rewiring_gives_a_ring_lattice() {
        let g = generate(&WattsStrogatzConfig {
            vertices: 40,
            neighbors: 2,
            rewire_probability: 0.0,
            seed: 1,
        });
        assert_eq!(g.num_vertices(), 40);
        assert_eq!(g.num_edges(), 80);
        assert!(g.vertices().all(|v| g.degree(v) == 4));
    }

    #[test]
    fn rewiring_shrinks_the_diameter() {
        let lattice = generate(&WattsStrogatzConfig {
            vertices: 400,
            neighbors: 2,
            rewire_probability: 0.0,
            seed: 2,
        });
        let small_world = generate(&WattsStrogatzConfig {
            vertices: 400,
            neighbors: 2,
            rewire_probability: 0.2,
            seed: 2,
        });
        let ecc_lattice = eccentricity(&lattice, 0);
        let ecc_small = eccentricity(&small_world, 0);
        assert!(
            ecc_small < ecc_lattice,
            "expected rewired eccentricity {ecc_small} < lattice {ecc_lattice}"
        );
    }

    #[test]
    fn is_deterministic() {
        let c = WattsStrogatzConfig {
            vertices: 100,
            neighbors: 3,
            rewire_probability: 0.1,
            seed: 9,
        };
        assert_eq!(generate(&c), generate(&c));
    }

    #[test]
    fn handles_degenerate_sizes() {
        for n in 0..3 {
            let g = generate(&WattsStrogatzConfig {
                vertices: n,
                neighbors: 2,
                rewire_probability: 0.5,
                seed: 0,
            });
            assert_eq!(g.num_vertices(), n);
            assert_eq!(g.num_edges(), 0);
        }
    }

    #[test]
    #[should_panic(expected = "rewire probability")]
    fn rejects_invalid_probability() {
        generate(&WattsStrogatzConfig {
            vertices: 10,
            neighbors: 1,
            rewire_probability: 1.5,
            seed: 0,
        });
    }

    #[test]
    fn full_rewiring_still_produces_simple_graph() {
        let g = generate(&WattsStrogatzConfig {
            vertices: 60,
            neighbors: 2,
            rewire_probability: 1.0,
            seed: 4,
        });
        for (u, v) in g.edges() {
            assert_ne!(u, v);
        }
        assert!(g.num_edges() <= 120);
    }
}
