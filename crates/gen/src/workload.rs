//! Query workloads.
//!
//! The paper evaluates query time on "10,000 pairs of vertices randomly
//! sampled from all pairs of vertices in each graph" (§6.1) and reports
//! their distance distribution in Figure 7. [`QueryWorkload`] reproduces
//! that sampling deterministically, and can additionally compute the
//! distance histogram needed for Figure 7.

use rand::Rng;
use serde::{Deserialize, Serialize};

use qbs_graph::stats::DistanceHistogram;
use qbs_graph::traversal::bfs_distances;
use qbs_graph::{Graph, VertexId, INFINITE_DISTANCE};

use crate::rng::seeded_rng;

/// A deterministic set of query vertex pairs.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryWorkload {
    pairs: Vec<(VertexId, VertexId)>,
    seed: u64,
}

impl QueryWorkload {
    /// Samples `count` vertex pairs uniformly at random (with the two
    /// endpoints forced to differ, as a `SPG(v, v)` query is trivial).
    ///
    /// Pairs may be disconnected if the graph is disconnected, matching the
    /// paper's "sampled from all pairs" methodology; use
    /// [`QueryWorkload::sample_connected`] to restrict to connected pairs.
    pub fn sample(graph: &Graph, count: usize, seed: u64) -> Self {
        let n = graph.num_vertices();
        let mut rng = seeded_rng(seed);
        let mut pairs = Vec::with_capacity(count);
        if n >= 2 {
            while pairs.len() < count {
                let u = rng.gen_range(0..n) as VertexId;
                let v = rng.gen_range(0..n) as VertexId;
                if u != v {
                    pairs.push((u, v));
                }
            }
        }
        QueryWorkload { pairs, seed }
    }

    /// Samples `count` pairs with Zipf-distributed endpoint popularity —
    /// the skewed serving traffic the batch execution planner targets.
    ///
    /// Both endpoints are drawn independently from a Zipf distribution with
    /// the given `exponent` over all vertices (endpoints forced to differ,
    /// as in [`QueryWorkload::sample`]). Rank is decoupled from vertex id by
    /// a seeded shuffle, so the hot head is a *random* set of vertices
    /// rather than the low ids — on preferential-attachment graphs the low
    /// ids are the hubs the landmark selection already absorbs, and a
    /// popularity skew aligned with them would be the easy case.
    ///
    /// Exponents around `1.0` give a long-tailed workload; `1.5` makes the
    /// head heavy enough that a 256-query batch repeats sources (and whole
    /// pairs) many times over.
    pub fn sample_zipf(graph: &Graph, count: usize, seed: u64, exponent: f64) -> Self {
        let n = graph.num_vertices();
        let mut rng = seeded_rng(seed);
        let mut pairs = Vec::with_capacity(count);
        if n >= 2 {
            // Rank → vertex map: a Fisher–Yates shuffle of the id space.
            let mut by_rank: Vec<VertexId> = (0..n as VertexId).collect();
            for i in (1..n).rev() {
                let j = rng.gen_range(0..i + 1);
                by_rank.swap(i, j);
            }
            // Inverse-CDF table over harmonic weights rank^-exponent.
            let mut cdf = Vec::with_capacity(n);
            let mut total = 0.0f64;
            for rank in 0..n {
                total += ((rank + 1) as f64).powf(-exponent);
                cdf.push(total);
            }
            let draw = |rng: &mut rand::rngs::SmallRng| -> VertexId {
                let x = rng.gen_range(0.0..total);
                let rank = cdf.partition_point(|&c| c <= x).min(n - 1);
                by_rank[rank]
            };
            while pairs.len() < count {
                let u = draw(&mut rng);
                let v = draw(&mut rng);
                if u != v {
                    pairs.push((u, v));
                }
            }
        }
        QueryWorkload { pairs, seed }
    }

    /// Samples `count` pairs that are connected in `graph`.
    ///
    /// Gives up (returning fewer pairs) if connected pairs are so rare that
    /// `50 × count` rejections were exhausted — that only happens on heavily
    /// fragmented graphs, which the catalog avoids by construction.
    pub fn sample_connected(graph: &Graph, count: usize, seed: u64) -> Self {
        let n = graph.num_vertices();
        let mut rng = seeded_rng(seed);
        let mut pairs = Vec::with_capacity(count);
        if n >= 2 {
            let comps = qbs_graph::components::connected_components(graph);
            let mut attempts = 0usize;
            while pairs.len() < count && attempts < count.saturating_mul(50).max(1000) {
                attempts += 1;
                let u = rng.gen_range(0..n) as VertexId;
                let v = rng.gen_range(0..n) as VertexId;
                if u != v && comps.connected(u, v) {
                    pairs.push((u, v));
                }
            }
        }
        QueryWorkload { pairs, seed }
    }

    /// The sampled pairs.
    pub fn pairs(&self) -> &[(VertexId, VertexId)] {
        &self.pairs
    }

    /// Number of sampled pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the workload is empty.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// The seed the workload was sampled with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Computes the distance of every pair (Figure 7's underlying data) by
    /// grouping pairs per source and running one BFS per distinct source.
    pub fn distance_histogram(&self, graph: &Graph) -> DistanceHistogram {
        let mut histogram = DistanceHistogram::default();
        if self.pairs.is_empty() {
            return histogram;
        }
        // Group by source to share BFS work.
        let mut by_source: std::collections::BTreeMap<VertexId, Vec<VertexId>> =
            std::collections::BTreeMap::new();
        for &(u, v) in &self.pairs {
            by_source.entry(u).or_default().push(v);
        }
        for (source, targets) in by_source {
            let dist = bfs_distances(graph, source);
            for v in targets {
                histogram.record(*dist.get(v as usize).unwrap_or(&INFINITE_DISTANCE));
            }
        }
        histogram
    }
}

/// Configuration for a [`BurstyWorkload`]: an open-loop multi-client
/// arrival schedule of Zipf-skewed query batches.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BurstyConfig {
    /// Number of independent clients submitting batches.
    pub clients: usize,
    /// Batches each client submits over the schedule.
    pub batches_per_client: usize,
    /// Requests per batch.
    pub batch_size: usize,
    /// Zipf exponent for endpoint popularity (see
    /// [`QueryWorkload::sample_zipf`]).
    pub zipf_exponent: f64,
    /// Mean gap between bursts on one client, in microseconds. Intra-burst
    /// gaps are `mean_gap_micros / 8`, so a burst lands nearly back-to-back.
    pub mean_gap_micros: u64,
    /// Mean batches per burst (burst sizes are drawn uniformly from
    /// `1..=2*burst_len - 1`).
    pub burst_len: usize,
    /// Deterministic seed; every draw (pairs, burst sizes, gaps) derives
    /// from it.
    pub seed: u64,
}

impl Default for BurstyConfig {
    fn default() -> Self {
        BurstyConfig {
            clients: 4,
            batches_per_client: 16,
            batch_size: 64,
            zipf_exponent: 1.5,
            mean_gap_micros: 2_000,
            burst_len: 4,
            seed: 2021,
        }
    }
}

/// One scheduled batch in an open-loop workload: which client sends it,
/// when (offset from schedule start), and the query pairs it carries.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchArrival {
    /// Index of the submitting client, `0..clients`.
    pub client: usize,
    /// Arrival offset from the start of the schedule, in microseconds.
    /// An open-loop replayer sends at this instant regardless of whether
    /// earlier batches have completed (and immediately once it falls
    /// behind schedule).
    pub at_micros: u64,
    /// The batch's query pairs.
    pub pairs: Vec<(VertexId, VertexId)>,
}

impl BatchArrival {
    /// The arrival offset as a [`std::time::Duration`].
    pub fn at(&self) -> std::time::Duration {
        std::time::Duration::from_micros(self.at_micros)
    }
}

/// A bursty multi-client arrival schedule: the serving-tier counterpart
/// of [`QueryWorkload`].
///
/// Serving traffic is neither uniform in content nor smooth in time —
/// clients send Zipf-skewed batches in bursts separated by lulls. Each
/// client gets its own timeline: batches arrive in bursts of roughly
/// `burst_len` spaced an eighth of the mean gap apart, with
/// exponentially distributed lulls between bursts. The schedule is
/// fully deterministic per seed, so benchmark runs are comparable.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BurstyWorkload {
    arrivals: Vec<BatchArrival>,
    clients: usize,
    seed: u64,
}

impl BurstyWorkload {
    /// Generates the schedule over `graph` per `config`.
    pub fn generate(graph: &Graph, config: &BurstyConfig) -> Self {
        let mut rng = seeded_rng(config.seed ^ 0x6275_7273_7479); // "bursty"
        let mut arrivals = Vec::with_capacity(config.clients * config.batches_per_client);
        for client in 0..config.clients {
            // Per-client pair stream: an independently seeded Zipf draw, so
            // clients overlap on the hot head but differ in the tail.
            let pairs = QueryWorkload::sample_zipf(
                graph,
                config.batches_per_client * config.batch_size,
                config
                    .seed
                    .wrapping_add(client as u64)
                    .wrapping_mul(0x9E37_79B9),
                config.zipf_exponent,
            );
            let mut batches = pairs.pairs().chunks(config.batch_size.max(1));
            let mut now = 0u64;
            let mut emitted = 0usize;
            while emitted < config.batches_per_client {
                // A burst of near-back-to-back batches...
                let burst = rng.gen_range(1..2 * config.burst_len.max(1));
                for _ in 0..burst.min(config.batches_per_client - emitted) {
                    if let Some(chunk) = batches.next() {
                        arrivals.push(BatchArrival {
                            client,
                            at_micros: now,
                            pairs: chunk.to_vec(),
                        });
                        emitted += 1;
                        now += config.mean_gap_micros / 8;
                    }
                }
                // ...then an exponential lull before the next burst.
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                let lull =
                    -(u.ln()) * (config.mean_gap_micros * config.burst_len.max(1) as u64) as f64;
                now += lull as u64;
            }
        }
        arrivals.sort_by_key(|a| (a.at_micros, a.client));
        BurstyWorkload {
            arrivals,
            clients: config.clients,
            seed: config.seed,
        }
    }

    /// All arrivals, sorted by offset (ties broken by client index).
    pub fn arrivals(&self) -> &[BatchArrival] {
        &self.arrivals
    }

    /// The arrivals of one client, in send order.
    pub fn client_arrivals(&self, client: usize) -> Vec<&BatchArrival> {
        self.arrivals
            .iter()
            .filter(|a| a.client == client)
            .collect()
    }

    /// Number of clients in the schedule.
    pub fn clients(&self) -> usize {
        self.clients
    }

    /// Total number of requests across every batch.
    pub fn total_requests(&self) -> usize {
        self.arrivals.iter().map(|a| a.pairs.len()).sum()
    }

    /// The offset of the last arrival (the nominal schedule length).
    pub fn duration(&self) -> std::time::Duration {
        std::time::Duration::from_micros(self.arrivals.last().map_or(0, |a| a.at_micros))
    }

    /// The seed the schedule was generated with.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structured;
    use qbs_graph::fixtures::figure4_graph;
    use qbs_graph::GraphBuilder;

    #[test]
    fn sample_produces_requested_count_of_distinct_endpoint_pairs() {
        let g = figure4_graph();
        let w = QueryWorkload::sample(&g, 500, 7);
        assert_eq!(w.len(), 500);
        assert!(!w.is_empty());
        assert_eq!(w.seed(), 7);
        assert!(w.pairs().iter().all(|&(u, v)| u != v));
        assert!(w
            .pairs()
            .iter()
            .all(|&(u, v)| (u as usize) < g.num_vertices() && (v as usize) < g.num_vertices()));
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let g = structured::grid(10, 10);
        assert_eq!(
            QueryWorkload::sample(&g, 100, 1),
            QueryWorkload::sample(&g, 100, 1)
        );
        assert_ne!(
            QueryWorkload::sample(&g, 100, 1),
            QueryWorkload::sample(&g, 100, 2)
        );
    }

    #[test]
    fn zipf_sampling_is_skewed_deterministic_and_in_range() {
        let g = structured::grid(30, 30);
        let w = QueryWorkload::sample_zipf(&g, 512, 9, 1.5);
        assert_eq!(w.len(), 512);
        assert!(w.pairs().iter().all(|&(u, v)| u != v));
        assert!(w
            .pairs()
            .iter()
            .all(|&(u, v)| (u as usize) < g.num_vertices() && (v as usize) < g.num_vertices()));
        assert_eq!(w, QueryWorkload::sample_zipf(&g, 512, 9, 1.5));
        assert_ne!(w, QueryWorkload::sample_zipf(&g, 512, 10, 1.5));
        // Exponent 1.5 puts ≈38% of the mass on the head rank; the hottest
        // source must dominate far beyond the uniform expectation (≲3).
        let mut counts = std::collections::HashMap::new();
        for &(u, _) in w.pairs() {
            *counts.entry(u).or_insert(0u32) += 1;
        }
        let hottest = counts.values().max().copied().unwrap();
        assert!(hottest >= 64, "expected a hot head, got {hottest}/512");
    }

    #[test]
    fn connected_sampling_avoids_cross_component_pairs() {
        // Two components: a triangle and a 3-path.
        let mut b = GraphBuilder::from_edges([(0u32, 1), (1, 2), (2, 0), (3, 4), (4, 5)]);
        b.reserve_vertices(6);
        let g = b.build();
        let w = QueryWorkload::sample_connected(&g, 200, 3);
        assert_eq!(w.len(), 200);
        let comps = qbs_graph::components::connected_components(&g);
        assert!(w.pairs().iter().all(|&(u, v)| comps.connected(u, v)));
    }

    #[test]
    fn empty_and_singleton_graphs_produce_empty_workloads() {
        let empty = GraphBuilder::new().build();
        assert!(QueryWorkload::sample(&empty, 10, 0).is_empty());
        let single = structured::path(1);
        assert!(QueryWorkload::sample(&single, 10, 0).is_empty());
        assert!(QueryWorkload::sample_connected(&single, 10, 0).is_empty());
    }

    #[test]
    fn histogram_covers_all_pairs_and_matches_figure7_shape() {
        let g = figure4_graph();
        let w = QueryWorkload::sample_connected(&g, 300, 11);
        let h = w.distance_histogram(&g);
        assert_eq!(h.total(), 300);
        assert_eq!(h.unreachable, 0);
        // Figure 4 graph has diameter 5 among its connected part.
        assert!(h.counts.len() <= 7);
        assert!(h.mean().unwrap() > 1.0);
    }

    #[test]
    fn bursty_schedule_is_deterministic_sorted_and_complete() {
        let g = structured::grid(30, 30);
        let config = BurstyConfig {
            clients: 3,
            batches_per_client: 8,
            batch_size: 16,
            ..BurstyConfig::default()
        };
        let w = BurstyWorkload::generate(&g, &config);
        assert_eq!(w, BurstyWorkload::generate(&g, &config));
        assert_ne!(
            w,
            BurstyWorkload::generate(
                &g,
                &BurstyConfig {
                    seed: config.seed + 1,
                    ..config
                }
            )
        );
        assert_eq!(w.clients(), 3);
        assert_eq!(w.arrivals().len(), 3 * 8);
        assert_eq!(w.total_requests(), 3 * 8 * 16);
        assert!(w
            .arrivals()
            .windows(2)
            .all(|p| p[0].at_micros <= p[1].at_micros));
        assert!(w.duration() > std::time::Duration::ZERO);
        for client in 0..3 {
            let mine = w.client_arrivals(client);
            assert_eq!(mine.len(), 8, "client {client} emits every batch");
            assert!(mine.windows(2).all(|p| p[0].at_micros <= p[1].at_micros));
            assert!(mine
                .iter()
                .flat_map(|a| a.pairs.iter())
                .all(|&(u, v)| u != v
                    && (u as usize) < g.num_vertices()
                    && (v as usize) < g.num_vertices()));
        }
    }

    #[test]
    fn bursty_schedule_actually_bursts() {
        let g = structured::grid(20, 20);
        let config = BurstyConfig {
            clients: 1,
            batches_per_client: 64,
            batch_size: 4,
            mean_gap_micros: 8_000,
            burst_len: 4,
            ..BurstyConfig::default()
        };
        let w = BurstyWorkload::generate(&g, &config);
        let mine = w.client_arrivals(0);
        let gaps: Vec<u64> = mine
            .windows(2)
            .map(|p| p[1].at_micros - p[0].at_micros)
            .collect();
        // Intra-burst gaps are mean/8 = 1ms exactly; lulls are exponential
        // with mean 32ms. Both regimes must be present.
        let intra = gaps.iter().filter(|&&g| g <= 1_000).count();
        let lulls = gaps.iter().filter(|&&g| g > 4_000).count();
        assert!(
            intra >= 16,
            "expected bursty back-to-back sends, got {intra} of {}",
            gaps.len()
        );
        assert!(
            lulls >= 4,
            "expected lulls between bursts, got {lulls} of {}",
            gaps.len()
        );
    }

    #[test]
    fn histogram_counts_unreachable_pairs() {
        let mut b = GraphBuilder::from_edges([(0u32, 1), (2, 3)]);
        b.reserve_vertices(4);
        let g = b.build();
        let w = QueryWorkload::sample(&g, 400, 5);
        let h = w.distance_histogram(&g);
        assert_eq!(h.total(), 400);
        assert!(h.unreachable > 0);
    }
}
