//! Query workloads.
//!
//! The paper evaluates query time on "10,000 pairs of vertices randomly
//! sampled from all pairs of vertices in each graph" (§6.1) and reports
//! their distance distribution in Figure 7. [`QueryWorkload`] reproduces
//! that sampling deterministically, and can additionally compute the
//! distance histogram needed for Figure 7.

use rand::Rng;
use serde::{Deserialize, Serialize};

use qbs_graph::stats::DistanceHistogram;
use qbs_graph::traversal::bfs_distances;
use qbs_graph::{Graph, VertexId, INFINITE_DISTANCE};

use crate::rng::seeded_rng;

/// A deterministic set of query vertex pairs.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryWorkload {
    pairs: Vec<(VertexId, VertexId)>,
    seed: u64,
}

impl QueryWorkload {
    /// Samples `count` vertex pairs uniformly at random (with the two
    /// endpoints forced to differ, as a `SPG(v, v)` query is trivial).
    ///
    /// Pairs may be disconnected if the graph is disconnected, matching the
    /// paper's "sampled from all pairs" methodology; use
    /// [`QueryWorkload::sample_connected`] to restrict to connected pairs.
    pub fn sample(graph: &Graph, count: usize, seed: u64) -> Self {
        let n = graph.num_vertices();
        let mut rng = seeded_rng(seed);
        let mut pairs = Vec::with_capacity(count);
        if n >= 2 {
            while pairs.len() < count {
                let u = rng.gen_range(0..n) as VertexId;
                let v = rng.gen_range(0..n) as VertexId;
                if u != v {
                    pairs.push((u, v));
                }
            }
        }
        QueryWorkload { pairs, seed }
    }

    /// Samples `count` pairs with Zipf-distributed endpoint popularity —
    /// the skewed serving traffic the batch execution planner targets.
    ///
    /// Both endpoints are drawn independently from a Zipf distribution with
    /// the given `exponent` over all vertices (endpoints forced to differ,
    /// as in [`QueryWorkload::sample`]). Rank is decoupled from vertex id by
    /// a seeded shuffle, so the hot head is a *random* set of vertices
    /// rather than the low ids — on preferential-attachment graphs the low
    /// ids are the hubs the landmark selection already absorbs, and a
    /// popularity skew aligned with them would be the easy case.
    ///
    /// Exponents around `1.0` give a long-tailed workload; `1.5` makes the
    /// head heavy enough that a 256-query batch repeats sources (and whole
    /// pairs) many times over.
    pub fn sample_zipf(graph: &Graph, count: usize, seed: u64, exponent: f64) -> Self {
        let n = graph.num_vertices();
        let mut rng = seeded_rng(seed);
        let mut pairs = Vec::with_capacity(count);
        if n >= 2 {
            // Rank → vertex map: a Fisher–Yates shuffle of the id space.
            let mut by_rank: Vec<VertexId> = (0..n as VertexId).collect();
            for i in (1..n).rev() {
                let j = rng.gen_range(0..i + 1);
                by_rank.swap(i, j);
            }
            // Inverse-CDF table over harmonic weights rank^-exponent.
            let mut cdf = Vec::with_capacity(n);
            let mut total = 0.0f64;
            for rank in 0..n {
                total += ((rank + 1) as f64).powf(-exponent);
                cdf.push(total);
            }
            let draw = |rng: &mut rand::rngs::SmallRng| -> VertexId {
                let x = rng.gen_range(0.0..total);
                let rank = cdf.partition_point(|&c| c <= x).min(n - 1);
                by_rank[rank]
            };
            while pairs.len() < count {
                let u = draw(&mut rng);
                let v = draw(&mut rng);
                if u != v {
                    pairs.push((u, v));
                }
            }
        }
        QueryWorkload { pairs, seed }
    }

    /// Samples `count` pairs that are connected in `graph`.
    ///
    /// Gives up (returning fewer pairs) if connected pairs are so rare that
    /// `50 × count` rejections were exhausted — that only happens on heavily
    /// fragmented graphs, which the catalog avoids by construction.
    pub fn sample_connected(graph: &Graph, count: usize, seed: u64) -> Self {
        let n = graph.num_vertices();
        let mut rng = seeded_rng(seed);
        let mut pairs = Vec::with_capacity(count);
        if n >= 2 {
            let comps = qbs_graph::components::connected_components(graph);
            let mut attempts = 0usize;
            while pairs.len() < count && attempts < count.saturating_mul(50).max(1000) {
                attempts += 1;
                let u = rng.gen_range(0..n) as VertexId;
                let v = rng.gen_range(0..n) as VertexId;
                if u != v && comps.connected(u, v) {
                    pairs.push((u, v));
                }
            }
        }
        QueryWorkload { pairs, seed }
    }

    /// The sampled pairs.
    pub fn pairs(&self) -> &[(VertexId, VertexId)] {
        &self.pairs
    }

    /// Number of sampled pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the workload is empty.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// The seed the workload was sampled with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Computes the distance of every pair (Figure 7's underlying data) by
    /// grouping pairs per source and running one BFS per distinct source.
    pub fn distance_histogram(&self, graph: &Graph) -> DistanceHistogram {
        let mut histogram = DistanceHistogram::default();
        if self.pairs.is_empty() {
            return histogram;
        }
        // Group by source to share BFS work.
        let mut by_source: std::collections::BTreeMap<VertexId, Vec<VertexId>> =
            std::collections::BTreeMap::new();
        for &(u, v) in &self.pairs {
            by_source.entry(u).or_default().push(v);
        }
        for (source, targets) in by_source {
            let dist = bfs_distances(graph, source);
            for v in targets {
                histogram.record(*dist.get(v as usize).unwrap_or(&INFINITE_DISTANCE));
            }
        }
        histogram
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structured;
    use qbs_graph::fixtures::figure4_graph;
    use qbs_graph::GraphBuilder;

    #[test]
    fn sample_produces_requested_count_of_distinct_endpoint_pairs() {
        let g = figure4_graph();
        let w = QueryWorkload::sample(&g, 500, 7);
        assert_eq!(w.len(), 500);
        assert!(!w.is_empty());
        assert_eq!(w.seed(), 7);
        assert!(w.pairs().iter().all(|&(u, v)| u != v));
        assert!(w
            .pairs()
            .iter()
            .all(|&(u, v)| (u as usize) < g.num_vertices() && (v as usize) < g.num_vertices()));
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let g = structured::grid(10, 10);
        assert_eq!(
            QueryWorkload::sample(&g, 100, 1),
            QueryWorkload::sample(&g, 100, 1)
        );
        assert_ne!(
            QueryWorkload::sample(&g, 100, 1),
            QueryWorkload::sample(&g, 100, 2)
        );
    }

    #[test]
    fn zipf_sampling_is_skewed_deterministic_and_in_range() {
        let g = structured::grid(30, 30);
        let w = QueryWorkload::sample_zipf(&g, 512, 9, 1.5);
        assert_eq!(w.len(), 512);
        assert!(w.pairs().iter().all(|&(u, v)| u != v));
        assert!(w
            .pairs()
            .iter()
            .all(|&(u, v)| (u as usize) < g.num_vertices() && (v as usize) < g.num_vertices()));
        assert_eq!(w, QueryWorkload::sample_zipf(&g, 512, 9, 1.5));
        assert_ne!(w, QueryWorkload::sample_zipf(&g, 512, 10, 1.5));
        // Exponent 1.5 puts ≈38% of the mass on the head rank; the hottest
        // source must dominate far beyond the uniform expectation (≲3).
        let mut counts = std::collections::HashMap::new();
        for &(u, _) in w.pairs() {
            *counts.entry(u).or_insert(0u32) += 1;
        }
        let hottest = counts.values().max().copied().unwrap();
        assert!(hottest >= 64, "expected a hot head, got {hottest}/512");
    }

    #[test]
    fn connected_sampling_avoids_cross_component_pairs() {
        // Two components: a triangle and a 3-path.
        let mut b = GraphBuilder::from_edges([(0u32, 1), (1, 2), (2, 0), (3, 4), (4, 5)]);
        b.reserve_vertices(6);
        let g = b.build();
        let w = QueryWorkload::sample_connected(&g, 200, 3);
        assert_eq!(w.len(), 200);
        let comps = qbs_graph::components::connected_components(&g);
        assert!(w.pairs().iter().all(|&(u, v)| comps.connected(u, v)));
    }

    #[test]
    fn empty_and_singleton_graphs_produce_empty_workloads() {
        let empty = GraphBuilder::new().build();
        assert!(QueryWorkload::sample(&empty, 10, 0).is_empty());
        let single = structured::path(1);
        assert!(QueryWorkload::sample(&single, 10, 0).is_empty());
        assert!(QueryWorkload::sample_connected(&single, 10, 0).is_empty());
    }

    #[test]
    fn histogram_covers_all_pairs_and_matches_figure7_shape() {
        let g = figure4_graph();
        let w = QueryWorkload::sample_connected(&g, 300, 11);
        let h = w.distance_histogram(&g);
        assert_eq!(h.total(), 300);
        assert_eq!(h.unreachable, 0);
        // Figure 4 graph has diameter 5 among its connected part.
        assert!(h.counts.len() <= 7);
        assert!(h.mean().unwrap() > 1.0);
    }

    #[test]
    fn histogram_counts_unreachable_pairs() {
        let mut b = GraphBuilder::from_edges([(0u32, 1), (2, 3)]);
        b.reserve_vertices(4);
        let g = b.build();
        let w = QueryWorkload::sample(&g, 400, 5);
        let h = w.distance_histogram(&g);
        assert_eq!(h.total(), 400);
        assert!(h.unreachable > 0);
    }
}
