//! Bidirectional breadth-first search.
//!
//! A bidirectional BFS expands alternately from both endpoints of a query
//! and stops when the two frontiers meet. On small-diameter complex networks
//! this visits far fewer vertices than a unidirectional BFS, which is why
//! the paper uses Bi-BFS both as its online-search baseline (§6.1) and as
//! the skeleton of the QbS guided search (Algorithm 4). This module provides
//! the *distance-only* bidirectional search used by statistics and the
//! baseline; the full guided search with reverse/recover phases lives in
//! `qbs-core`.

use crate::vertex::{Distance, VertexId, INFINITE_DISTANCE};
use crate::view::NeighborAccess;

/// Counters describing how much work a search performed; used to reproduce
/// the "edges traversed" comparison of §6.5.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SearchEffort {
    /// Vertices popped from either frontier.
    pub vertices_settled: usize,
    /// Directed edges relaxed (neighbour inspections).
    pub edges_traversed: usize,
    /// Number of levels expanded from the forward side.
    pub forward_levels: usize,
    /// Number of levels expanded from the backward side.
    pub backward_levels: usize,
}

/// Result of a bidirectional distance query.
#[derive(Clone, Debug)]
pub struct BidirResult {
    /// Distance between the two endpoints ([`INFINITE_DISTANCE`] if
    /// disconnected in the searched view).
    pub distance: Distance,
    /// Work counters.
    pub effort: SearchEffort,
}

/// State of one search side (forward or backward).
struct Side {
    dist: Vec<Distance>,
    frontier: Vec<VertexId>,
    settled: Vec<VertexId>,
    level: Distance,
    frontier_degree_sum: usize,
}

impl Side {
    fn new(n: usize, source: VertexId) -> Self {
        let mut dist = vec![INFINITE_DISTANCE; n];
        dist[source as usize] = 0;
        Side {
            dist,
            frontier: vec![source],
            settled: vec![source],
            level: 0,
            frontier_degree_sum: 0,
        }
    }

    /// Expands the frontier by one level; returns `true` if any new vertex
    /// was discovered.
    fn expand<G: NeighborAccess>(&mut self, graph: &G, effort: &mut SearchEffort) -> bool {
        let mut next = Vec::new();
        let mut next_degree_sum = 0usize;
        for &u in &self.frontier {
            effort.vertices_settled += 1;
            graph.for_each_neighbor(u, |v| {
                effort.edges_traversed += 1;
                if self.dist[v as usize] == INFINITE_DISTANCE {
                    self.dist[v as usize] = self.level + 1;
                    next_degree_sum += graph.view_degree(v);
                    next.push(v);
                }
            });
        }
        self.level += 1;
        self.settled.extend_from_slice(&next);
        self.frontier = next;
        self.frontier_degree_sum = next_degree_sum;
        !self.frontier.is_empty()
    }
}

/// Computes the distance between `u` and `v` with an alternating
/// bidirectional BFS.
///
/// The side with the smaller pending frontier (measured by the sum of
/// frontier degrees, the "Optimized Bidirectional BFS" heuristic of
/// Hayashi et al. that the paper builds on) is expanded first. The search
/// terminates as soon as a vertex settled from both sides proves the
/// current best meeting distance optimal.
pub fn bidirectional_distance<G: NeighborAccess>(
    graph: &G,
    u: VertexId,
    v: VertexId,
) -> BidirResult {
    bidirectional_distance_bounded(graph, u, v, INFINITE_DISTANCE)
}

/// Like [`bidirectional_distance`] but gives up (returning
/// [`INFINITE_DISTANCE`]) once it can prove the distance exceeds `bound`.
pub fn bidirectional_distance_bounded<G: NeighborAccess>(
    graph: &G,
    u: VertexId,
    v: VertexId,
    bound: Distance,
) -> BidirResult {
    let n = graph.vertex_count();
    let mut effort = SearchEffort::default();
    if !graph.contains_vertex(u) || !graph.contains_vertex(v) {
        return BidirResult {
            distance: INFINITE_DISTANCE,
            effort,
        };
    }
    if u == v {
        return BidirResult {
            distance: 0,
            effort,
        };
    }

    let mut fwd = Side::new(n, u);
    let mut bwd = Side::new(n, v);
    fwd.frontier_degree_sum = graph.view_degree(u);
    bwd.frontier_degree_sum = graph.view_degree(v);

    loop {
        // If every remaining path must be longer than the bound, stop.
        if fwd.level + bwd.level >= bound {
            return BidirResult {
                distance: INFINITE_DISTANCE,
                effort,
            };
        }
        if fwd.frontier.is_empty() || bwd.frontier.is_empty() {
            return BidirResult {
                distance: INFINITE_DISTANCE,
                effort,
            };
        }

        // Expand the cheaper side.
        let expand_forward = fwd.frontier_degree_sum <= bwd.frontier_degree_sum;
        let progressed = if expand_forward {
            effort.forward_levels += 1;
            fwd.expand(graph, &mut effort)
        } else {
            effort.backward_levels += 1;
            bwd.expand(graph, &mut effort)
        };
        if !progressed {
            return BidirResult {
                distance: INFINITE_DISTANCE,
                effort,
            };
        }

        // Check whether the frontiers intersect the other side's settled set.
        let (just_expanded, other) = if expand_forward {
            (&fwd, &bwd)
        } else {
            (&bwd, &fwd)
        };
        let mut best = INFINITE_DISTANCE;
        for &w in &just_expanded.frontier {
            let od = other.dist[w as usize];
            if od != INFINITE_DISTANCE {
                let total = just_expanded.level + od;
                if total < best {
                    best = total;
                }
            }
        }
        if best != INFINITE_DISTANCE {
            return BidirResult {
                distance: best.min(bound),
                effort,
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{figure3_graph, figure4_graph};
    use crate::traversal::bfs_distances;
    use crate::view::{FilteredGraph, VertexFilter};
    use crate::GraphBuilder;

    #[test]
    fn matches_full_bfs_on_figure_graphs() {
        for g in [figure3_graph(), figure4_graph()] {
            for u in g.vertices() {
                let full = bfs_distances(&g, u);
                for v in g.vertices() {
                    let bi = bidirectional_distance(&g, u, v);
                    assert_eq!(bi.distance, full[v as usize], "pair ({u},{v})");
                }
            }
        }
    }

    #[test]
    fn identical_endpoints_have_distance_zero() {
        let g = figure3_graph();
        assert_eq!(bidirectional_distance(&g, 5, 5).distance, 0);
    }

    #[test]
    fn disconnected_pairs_are_infinite() {
        let mut b = GraphBuilder::from_edges([(0u32, 1), (2, 3)]);
        b.reserve_vertices(4);
        let g = b.build();
        assert_eq!(bidirectional_distance(&g, 0, 3).distance, INFINITE_DISTANCE);
    }

    #[test]
    fn bounded_search_gives_up_beyond_bound() {
        let g = GraphBuilder::from_edges([(0u32, 1), (1, 2), (2, 3), (3, 4), (4, 5)]).build();
        let r = bidirectional_distance_bounded(&g, 0, 5, 3);
        assert_eq!(r.distance, INFINITE_DISTANCE);
        let r = bidirectional_distance_bounded(&g, 0, 5, 5);
        assert_eq!(r.distance, 5);
    }

    #[test]
    fn works_on_sparsified_view() {
        let g = figure4_graph();
        let removed = VertexFilter::from_vertices(g.num_vertices(), [1u32, 2, 3]);
        let view = FilteredGraph::new(&g, &removed);
        // Example 4.8: d_{G⁻}(6, 11) = 5.
        assert_eq!(bidirectional_distance(&view, 6, 11).distance, 5);
        // Vertex 4 is isolated once the landmarks are gone.
        assert_eq!(
            bidirectional_distance(&view, 6, 4).distance,
            INFINITE_DISTANCE
        );
    }

    #[test]
    fn effort_counters_are_populated() {
        let g = figure4_graph();
        let r = bidirectional_distance(&g, 6, 11);
        assert!(r.effort.vertices_settled > 0);
        assert!(r.effort.edges_traversed > 0);
        assert!(r.effort.forward_levels + r.effort.backward_levels > 0);
    }

    #[test]
    fn effort_smaller_than_full_bfs_on_figure4() {
        let g = figure4_graph();
        let r = bidirectional_distance(&g, 6, 11);
        // A full BFS would traverse every arc; Bi-BFS should do less here.
        assert!(r.effort.edges_traversed <= g.num_arcs());
    }

    #[test]
    fn endpoint_not_in_view_is_infinite() {
        let g = figure4_graph();
        let removed = VertexFilter::from_vertices(g.num_vertices(), [6u32]);
        let view = FilteredGraph::new(&g, &removed);
        assert_eq!(
            bidirectional_distance(&view, 6, 11).distance,
            INFINITE_DISTANCE
        );
    }
}
