//! Mutable graph construction.
//!
//! [`GraphBuilder`] accumulates an edge list in any order, then freezes it
//! into the immutable CSR [`Graph`]. During the freeze it performs the same
//! normalisation the paper applies to its datasets (§6.1): directed inputs
//! are symmetrised, duplicate edges and self-loops are dropped, and the
//! experiment harness optionally restricts to the largest connected
//! component so that every sampled query pair is connected.

use crate::components;
use crate::csr::Graph;
use crate::vertex::VertexId;

/// Accumulates edges and produces a normalised [`Graph`].
///
/// # Example
///
/// ```
/// use qbs_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new();
/// b.add_edge(0, 1);
/// b.add_edge(1, 0); // duplicate in the other direction — collapsed
/// b.add_edge(1, 1); // self-loop — dropped
/// b.add_edge(1, 2);
/// let g = b.build();
/// assert_eq!(g.num_vertices(), 3);
/// assert_eq!(g.num_edges(), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    edges: Vec<(VertexId, VertexId)>,
    min_vertices: usize,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder pre-populated from an edge iterator.
    pub fn from_edges<I>(edges: I) -> Self
    where
        I: IntoIterator<Item = (VertexId, VertexId)>,
    {
        let mut b = Self::new();
        for (u, v) in edges {
            b.add_edge(u, v);
        }
        b
    }

    /// Creates a builder that will produce a graph with at least
    /// `num_vertices` vertices even if some of them end up isolated.
    pub fn with_capacity(num_vertices: usize, num_edges: usize) -> Self {
        GraphBuilder {
            edges: Vec::with_capacity(num_edges),
            min_vertices: num_vertices,
        }
    }

    /// Ensures the built graph has at least `n` vertices.
    pub fn reserve_vertices(&mut self, n: usize) -> &mut Self {
        self.min_vertices = self.min_vertices.max(n);
        self
    }

    /// Adds an undirected edge `{u, v}`. Self-loops are recorded but dropped
    /// at [`GraphBuilder::build`] time.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> &mut Self {
        self.edges.push((u, v));
        self
    }

    /// Number of raw (possibly duplicated) edges recorded so far.
    pub fn raw_edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Freezes the accumulated edges into a CSR [`Graph`].
    ///
    /// Normalisation performed:
    /// 1. self-loops `(v, v)` are removed;
    /// 2. every edge is symmetrised (`{u, v}` appears in both adjacency
    ///    lists exactly once, regardless of how many times or in which
    ///    direction it was added);
    /// 3. adjacency lists are sorted.
    pub fn build(&self) -> Graph {
        let n = self
            .edges
            .iter()
            .map(|&(u, v)| u.max(v) as usize + 1)
            .max()
            .unwrap_or(0)
            .max(self.min_vertices);

        // Count degrees for both directions, skipping self-loops.
        let mut degree = vec![0u64; n];
        for &(u, v) in &self.edges {
            if u != v {
                degree[u as usize] += 1;
                degree[v as usize] += 1;
            }
        }

        let mut offsets = vec![0u64; n + 1];
        for v in 0..n {
            offsets[v + 1] = offsets[v] + degree[v];
        }

        let mut neighbors = vec![0 as VertexId; offsets[n] as usize];
        let mut cursor: Vec<u64> = offsets[..n].to_vec();
        for &(u, v) in &self.edges {
            if u != v {
                neighbors[cursor[u as usize] as usize] = v;
                cursor[u as usize] += 1;
                neighbors[cursor[v as usize] as usize] = u;
                cursor[v as usize] += 1;
            }
        }

        // Sort and deduplicate each adjacency list, then re-compact.
        let mut dedup_neighbors = Vec::with_capacity(neighbors.len());
        let mut dedup_offsets = vec![0u64; n + 1];
        for v in 0..n {
            let lo = offsets[v] as usize;
            let hi = offsets[v + 1] as usize;
            let mut adj: Vec<VertexId> = neighbors[lo..hi].to_vec();
            adj.sort_unstable();
            adj.dedup();
            dedup_neighbors.extend_from_slice(&adj);
            dedup_offsets[v + 1] = dedup_neighbors.len() as u64;
        }

        Graph::from_csr_parts(dedup_offsets, dedup_neighbors)
    }

    /// Builds the graph and then restricts it to its largest connected
    /// component, relabelling vertices densely.
    ///
    /// Returns the component graph together with the mapping
    /// `new_id -> original_id`.
    pub fn build_largest_component(&self) -> (Graph, Vec<VertexId>) {
        let g = self.build();
        components::largest_component(&g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deduplicates_and_symmetrises() {
        let g = GraphBuilder::from_edges([(0u32, 1), (1, 0), (0, 1), (2, 1)]).build();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
    }

    #[test]
    fn removes_self_loops() {
        let g = GraphBuilder::from_edges([(0u32, 0), (0, 1), (1, 1)]).build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0]);
    }

    #[test]
    fn reserve_vertices_creates_isolated_vertices() {
        let mut b = GraphBuilder::from_edges([(0u32, 1)]);
        b.reserve_vertices(5);
        let g = b.build();
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.degree(4), 0);
    }

    #[test]
    fn empty_builder_builds_empty_graph() {
        let g = GraphBuilder::new().build();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn with_capacity_sets_minimum_vertices() {
        let g = GraphBuilder::with_capacity(3, 10).build();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn raw_edge_count_tracks_all_insertions() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1).add_edge(1, 0).add_edge(2, 2);
        assert_eq!(b.raw_edge_count(), 3);
    }

    #[test]
    fn build_largest_component_relabels_densely() {
        // Two components: {0,1,2} (triangle) and {3,4} (edge).
        let b = GraphBuilder::from_edges([(0u32, 1), (1, 2), (2, 0), (3, 4)]);
        let (g, map) = b.build_largest_component();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        let mut orig: Vec<_> = map.clone();
        orig.sort_unstable();
        assert_eq!(orig, vec![0, 1, 2]);
    }
}
