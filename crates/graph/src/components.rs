//! Connected components.
//!
//! QbS assumes a connected graph ("we assume that 𝐺 is undirected and
//! connected", §2); the dataset catalog therefore restricts every generated
//! or loaded graph to its largest connected component before running
//! experiments. This module provides the component decomposition used for
//! that step.

use crate::csr::Graph;
use crate::vertex::{VertexId, INVALID_VERTEX};

/// Component labelling of a graph: `labels[v]` is the component id of `v`,
/// ids are dense in `0..num_components`.
#[derive(Clone, Debug)]
pub struct Components {
    /// Per-vertex component id.
    pub labels: Vec<u32>,
    /// Size of each component, indexed by component id.
    pub sizes: Vec<usize>,
}

impl Components {
    /// Number of connected components.
    pub fn count(&self) -> usize {
        self.sizes.len()
    }

    /// Component id of the largest component (ties broken by smaller id).
    pub fn largest(&self) -> u32 {
        self.sizes
            .iter()
            .enumerate()
            .max_by_key(|&(idx, &size)| (size, std::cmp::Reverse(idx)))
            .map(|(idx, _)| idx as u32)
            .unwrap_or(0)
    }

    /// Whether vertices `u` and `v` belong to the same component.
    pub fn connected(&self, u: VertexId, v: VertexId) -> bool {
        self.labels[u as usize] == self.labels[v as usize]
    }
}

/// Computes connected components with iterative BFS (no recursion, so deep
/// paths cannot overflow the stack).
pub fn connected_components(graph: &Graph) -> Components {
    let n = graph.num_vertices();
    let mut labels = vec![u32::MAX; n];
    let mut sizes = Vec::new();
    let mut queue: Vec<VertexId> = Vec::new();

    for start in 0..n as VertexId {
        if labels[start as usize] != u32::MAX {
            continue;
        }
        let comp = sizes.len() as u32;
        let mut size = 0usize;
        labels[start as usize] = comp;
        queue.clear();
        queue.push(start);
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            size += 1;
            for &v in graph.neighbors(u) {
                if labels[v as usize] == u32::MAX {
                    labels[v as usize] = comp;
                    queue.push(v);
                }
            }
        }
        sizes.push(size);
    }

    Components { labels, sizes }
}

/// Whether the graph is connected (an empty graph counts as connected).
pub fn is_connected(graph: &Graph) -> bool {
    graph.is_empty() || connected_components(graph).count() == 1
}

/// Extracts the largest connected component as a new graph with densely
/// relabelled vertices.
///
/// Returns `(subgraph, mapping)` where `mapping[new_id] = original_id`.
pub fn largest_component(graph: &Graph) -> (Graph, Vec<VertexId>) {
    if graph.is_empty() {
        return (graph.clone(), Vec::new());
    }
    let comps = connected_components(graph);
    let target = comps.largest();

    let mut old_to_new = vec![INVALID_VERTEX; graph.num_vertices()];
    let mut new_to_old = Vec::with_capacity(comps.sizes[target as usize]);
    for v in graph.vertices() {
        if comps.labels[v as usize] == target {
            old_to_new[v as usize] = new_to_old.len() as VertexId;
            new_to_old.push(v);
        }
    }

    let mut builder = crate::GraphBuilder::with_capacity(new_to_old.len(), graph.num_edges());
    builder.reserve_vertices(new_to_old.len());
    for (u, v) in graph.edges() {
        if comps.labels[u as usize] == target {
            builder.add_edge(old_to_new[u as usize], old_to_new[v as usize]);
        }
    }
    (builder.build(), new_to_old)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn two_components() -> Graph {
        GraphBuilder::from_edges([(0u32, 1), (1, 2), (3, 4), (4, 5), (5, 6)]).build()
    }

    #[test]
    fn counts_components_and_sizes() {
        let comps = connected_components(&two_components());
        assert_eq!(comps.count(), 2);
        let mut sizes = comps.sizes.clone();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![3, 4]);
    }

    #[test]
    fn largest_picks_bigger_component() {
        let comps = connected_components(&two_components());
        let largest = comps.largest();
        assert_eq!(comps.sizes[largest as usize], 4);
    }

    #[test]
    fn connected_queries() {
        let comps = connected_components(&two_components());
        assert!(comps.connected(0, 2));
        assert!(comps.connected(3, 6));
        assert!(!comps.connected(0, 3));
    }

    #[test]
    fn is_connected_detects_both_cases() {
        assert!(!is_connected(&two_components()));
        let g = GraphBuilder::from_edges([(0u32, 1), (1, 2)]).build();
        assert!(is_connected(&g));
        assert!(is_connected(&GraphBuilder::new().build()));
    }

    #[test]
    fn largest_component_extracts_and_relabels() {
        let (sub, map) = largest_component(&two_components());
        assert_eq!(sub.num_vertices(), 4);
        assert_eq!(sub.num_edges(), 3);
        // The mapped-back vertex ids must be {3,4,5,6}.
        let mut orig = map.clone();
        orig.sort_unstable();
        assert_eq!(orig, vec![3, 4, 5, 6]);
        // Path structure preserved: endpoints have degree 1.
        let deg1 = sub.vertices().filter(|&v| sub.degree(v) == 1).count();
        assert_eq!(deg1, 2);
    }

    #[test]
    fn largest_component_of_empty_graph() {
        let (sub, map) = largest_component(&GraphBuilder::new().build());
        assert!(sub.is_empty());
        assert!(map.is_empty());
    }

    #[test]
    fn isolated_vertices_form_singleton_components() {
        let mut b = GraphBuilder::from_edges([(0u32, 1)]);
        b.reserve_vertices(4);
        let comps = connected_components(&b.build());
        assert_eq!(comps.count(), 3);
    }
}
