//! Immutable compressed-sparse-row (CSR) graph representation.
//!
//! The CSR layout stores, for every vertex `v`, a contiguous slice of its
//! neighbours inside one shared array. This gives O(1) access to the
//! adjacency list, excellent cache locality during BFS (the dominant
//! operation in both the QbS labelling phase and its guided search), and a
//! memory footprint of `4·(|V|+1) + 4·2·|E|` bytes — the "each edge appearing
//! in the adjacency lists and being represented by 8 bytes" accounting that
//! the paper uses for the `|G|` column of Table 1.

use serde::{Deserialize, Serialize};

use crate::vertex::{Distance, VertexId};

/// An immutable undirected, unweighted graph in CSR form.
///
/// Vertices are the dense range `0..num_vertices()`. Each undirected edge
/// `{u, v}` is stored twice, once in the adjacency list of `u` and once in
/// the adjacency list of `v`. Adjacency lists are sorted in increasing
/// vertex order, which makes membership tests logarithmic and iteration
/// deterministic.
///
/// Construct a `Graph` through [`crate::GraphBuilder`]; the raw constructor
/// [`Graph::from_csr_parts`] is exposed for deserialisation and tests.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    /// `offsets[v]..offsets[v+1]` is the slice of `neighbors` for vertex `v`.
    offsets: Vec<u64>,
    /// Concatenated, per-vertex sorted adjacency lists.
    neighbors: Vec<VertexId>,
}

impl Graph {
    /// Builds a graph directly from CSR arrays.
    ///
    /// # Panics
    ///
    /// Panics if the offsets are not monotonically increasing, do not start
    /// at zero, do not end at `neighbors.len()`, or if any neighbour id is
    /// out of range. These conditions are programming errors rather than
    /// recoverable failures, so they are asserted instead of returned.
    pub fn from_csr_parts(offsets: Vec<u64>, neighbors: Vec<VertexId>) -> Self {
        assert!(
            !offsets.is_empty(),
            "offsets must contain at least one entry"
        );
        assert_eq!(offsets[0], 0, "offsets must start at zero");
        assert_eq!(
            *offsets.last().expect("non-empty") as usize,
            neighbors.len(),
            "offsets must end at neighbors.len()"
        );
        assert!(
            offsets.windows(2).all(|w| w[0] <= w[1]),
            "offsets must be monotonically increasing"
        );
        let n = (offsets.len() - 1) as u64;
        assert!(
            neighbors.iter().all(|&v| (v as u64) < n),
            "neighbour id out of range"
        );
        Graph { offsets, neighbors }
    }

    /// Number of vertices, including isolated ones.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of *undirected* edges (each `{u, v}` counted once).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Number of directed arcs stored (twice [`Graph::num_edges`]).
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.neighbors.len()
    }

    /// Returns `true` when the graph has no vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.num_vertices() == 0
    }

    /// The sorted adjacency list of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.neighbors[lo..hi]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    /// Whether the undirected edge `{u, v}` is present.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        if u as usize >= self.num_vertices() || v as usize >= self.num_vertices() {
            return false;
        }
        // Search the smaller adjacency list.
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Iterator over all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        0..self.num_vertices() as VertexId
    }

    /// Iterator over every undirected edge exactly once, as `(u, v)` with
    /// `u <= v` ordering guaranteed by construction (`u < v` since self-loops
    /// are removed by the builder).
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.vertices().flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Maximum degree over all vertices (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.num_vertices())
            .map(|v| self.degree(v as VertexId))
            .max()
            .unwrap_or(0)
    }

    /// Average degree `2|E| / |V|` (0.0 for an empty graph).
    pub fn avg_degree(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.num_arcs() as f64 / self.num_vertices() as f64
        }
    }

    /// The `k` vertices of highest degree, ties broken by smaller id first.
    ///
    /// This is the landmark selection rule used by QbS (§6.1: "we choose
    /// vertices with the largest degrees as landmarks").
    pub fn top_k_by_degree(&self, k: usize) -> Vec<VertexId> {
        let mut order: Vec<VertexId> = (0..self.num_vertices() as VertexId).collect();
        order.sort_by_key(|&v| (std::cmp::Reverse(self.degree(v)), v));
        order.truncate(k);
        order
    }

    /// Estimated in-memory size of the adjacency structure, in bytes.
    ///
    /// Matches the accounting of Table 1 in the paper: every directed arc
    /// costs 8 bytes (4-byte target id plus its share of the offset array).
    pub fn size_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<u64>()
            + self.neighbors.len() * std::mem::size_of::<VertexId>()
    }

    /// The raw CSR offset array (`offsets[v]..offsets[v+1]` indexes the
    /// neighbour array). Exposed for flat binary serialisation.
    #[inline]
    pub fn csr_offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// The raw concatenated neighbour array. Exposed for flat binary
    /// serialisation.
    #[inline]
    pub fn csr_neighbors(&self) -> &[VertexId] {
        &self.neighbors
    }

    /// Eccentricity-bounded check that a distance value could be valid.
    ///
    /// A shortest-path distance in a connected graph never exceeds
    /// `|V| - 1`; helpers use this to sanity-check distances produced by
    /// composed searches.
    #[inline]
    pub fn is_plausible_distance(&self, d: Distance) -> bool {
        (d as usize) < self.num_vertices().max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn triangle_plus_tail() -> Graph {
        // 0-1, 1-2, 2-0 triangle, tail 2-3.
        GraphBuilder::from_edges([(0u32, 1), (1, 2), (2, 0), (2, 3)]).build()
    }

    #[test]
    fn counts_vertices_edges_and_arcs() {
        let g = triangle_plus_tail();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.num_arcs(), 8);
        assert!(!g.is_empty());
    }

    #[test]
    fn neighbors_are_sorted_and_degree_consistent() {
        let g = triangle_plus_tail();
        assert_eq!(g.neighbors(2), &[0, 1, 3]);
        assert_eq!(g.degree(2), 3);
        assert_eq!(g.degree(3), 1);
    }

    #[test]
    fn has_edge_checks_both_directions() {
        let g = triangle_plus_tail();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(g.has_edge(3, 2));
        assert!(!g.has_edge(0, 3));
        assert!(!g.has_edge(0, 99));
    }

    #[test]
    fn edges_iterator_lists_each_edge_once() {
        let g = triangle_plus_tail();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2), (2, 3)]);
    }

    #[test]
    fn degree_statistics() {
        let g = triangle_plus_tail();
        assert_eq!(g.max_degree(), 3);
        assert!((g.avg_degree() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn top_k_by_degree_breaks_ties_by_id() {
        let g = triangle_plus_tail();
        assert_eq!(g.top_k_by_degree(2), vec![2, 0]);
        assert_eq!(g.top_k_by_degree(10).len(), 4);
    }

    #[test]
    fn size_bytes_counts_offsets_and_arcs() {
        let g = triangle_plus_tail();
        assert_eq!(g.size_bytes(), 5 * 8 + 8 * 4);
    }

    #[test]
    #[should_panic(expected = "offsets must start at zero")]
    fn from_csr_parts_rejects_bad_offsets() {
        let _ = Graph::from_csr_parts(vec![1, 2], vec![0]);
    }

    #[test]
    #[should_panic(expected = "neighbour id out of range")]
    fn from_csr_parts_rejects_out_of_range_neighbor() {
        let _ = Graph::from_csr_parts(vec![0, 1], vec![5]);
    }

    #[test]
    fn empty_graph_defaults() {
        let g = GraphBuilder::new().build();
        assert!(g.is_empty());
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.avg_degree(), 0.0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn serde_roundtrip() {
        let g = triangle_plus_tail();
        let json = serde_json::to_string(&g).expect("serialize");
        let back: Graph = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(g, back);
    }
}
