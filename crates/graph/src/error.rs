//! Error type shared by the graph substrate.

use std::fmt;

/// Errors produced while constructing, loading or storing graphs.
#[derive(Debug)]
pub enum GraphError {
    /// A vertex identifier referenced a vertex outside `0..num_vertices`.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: u64,
        /// The number of vertices in the graph.
        num_vertices: u64,
    },
    /// An edge list line could not be parsed.
    ParseEdge {
        /// 1-based line number of the offending line.
        line: usize,
        /// The raw line content.
        content: String,
    },
    /// The binary graph format header was malformed or truncated.
    InvalidFormat(String),
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The operation requires a non-empty graph.
    EmptyGraph,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange {
                vertex,
                num_vertices,
            } => write!(
                f,
                "vertex {vertex} out of range for graph with {num_vertices} vertices"
            ),
            GraphError::ParseEdge { line, content } => {
                write!(f, "cannot parse edge on line {line}: {content:?}")
            }
            GraphError::InvalidFormat(msg) => write!(f, "invalid graph format: {msg}"),
            GraphError::Io(err) => write!(f, "i/o error: {err}"),
            GraphError::EmptyGraph => write!(f, "operation requires a non-empty graph"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(err: std::io::Error) -> Self {
        GraphError::Io(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = GraphError::VertexOutOfRange {
            vertex: 10,
            num_vertices: 5,
        };
        assert!(e.to_string().contains("vertex 10"));
        assert!(e.to_string().contains("5 vertices"));

        let e = GraphError::ParseEdge {
            line: 3,
            content: "a b".into(),
        };
        assert!(e.to_string().contains("line 3"));

        let e = GraphError::EmptyGraph;
        assert!(e.to_string().contains("non-empty"));
    }

    #[test]
    fn io_error_conversion_preserves_source() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let e: GraphError = io.into();
        assert!(matches!(e, GraphError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
