//! Small graphs taken directly from the paper's figures.
//!
//! These fixtures are exported (rather than hidden behind `#[cfg(test)]`)
//! because every crate in the workspace — and the documentation examples —
//! validates its algorithms against the worked examples of the paper
//! (Figure 3, Figure 4/5/6 and Figure 1).

use crate::csr::Graph;
use crate::vertex::VertexId;
use crate::GraphBuilder;

/// The 7-vertex graph of Figure 3(a).
///
/// Vertex ids match the figure (vertex 0 exists but is isolated). The
/// shortest-path-graph query `SPG(3, 7)` on this graph has answer vertices
/// `{3, 1, 4, 2, 5, 7}` and distance 4, the example used in §3 to show that
/// a plain 2-hop distance cover is insufficient.
pub fn figure3_graph() -> Graph {
    let edges = [
        (1u32, 2),
        (1, 3),
        (2, 4),
        (3, 4),
        (2, 5),
        (2, 6),
        (5, 6),
        (5, 7),
    ];
    let mut b = GraphBuilder::from_edges(edges);
    b.reserve_vertices(8);
    b.build()
}

/// The 14-vertex running-example graph of Figures 2 and 4(a).
///
/// Vertex ids match the figures (vertex 0 exists but is isolated); the
/// landmarks are `{1, 2, 3}` (see [`figure4_landmarks`]). The edge list was
/// reconstructed from the path labelling of Figure 4(c), the meta-graph of
/// Figure 4(b) and the worked query `SPG(6, 11)` of Examples 4.7/4.8:
///
/// * `L(4) = {(1,1), (3,1)}`, `L(11) = {(2,3), (3,2)}`, … all hold;
/// * the meta-graph has edges `(1,2)` and `(2,3)` of weight 1 and `(1,3)` of
///   weight 2 (one shortest path through vertex 4);
/// * `d_G(6, 11) = 5` with exactly the three shortest paths
///   `6-7-8-9-10-11`, `6-1-2-9-10-11` and `6-1-4-3-12-11`.
pub fn figure4_graph() -> Graph {
    let edges = [
        (1u32, 2),
        (1, 4),
        (1, 5),
        (1, 6),
        (2, 3),
        (2, 8),
        (2, 9),
        (3, 4),
        (3, 12),
        (3, 13),
        (5, 6),
        (5, 14),
        (6, 7),
        (7, 8),
        (8, 9),
        (9, 10),
        (10, 11),
        (11, 12),
        (13, 14),
    ];
    let mut b = GraphBuilder::from_edges(edges);
    b.reserve_vertices(15);
    b.build()
}

/// The landmark set `{1, 2, 3}` used for [`figure4_graph`] in the paper.
pub fn figure4_landmarks() -> Vec<VertexId> {
    vec![1, 2, 3]
}

/// Figure 1(b): two vertices at distance 3 connected by exactly three
/// vertex-disjoint shortest paths. `u = 0`, `v = 7`.
pub fn figure1b_graph() -> Graph {
    GraphBuilder::from_edges([
        (0u32, 1),
        (1, 2),
        (2, 7),
        (0, 3),
        (3, 4),
        (4, 7),
        (0, 5),
        (5, 6),
        (6, 7),
    ])
    .build()
}

/// The expected answer of `SPG(6, 11)` on [`figure4_graph`], as the edge set
/// shown in Figure 6(f).
pub fn figure4_spg_6_11_edges() -> Vec<(VertexId, VertexId)> {
    vec![
        (6, 7),
        (7, 8),
        (8, 9),
        (9, 10),
        (10, 11),
        (1, 6),
        (1, 2),
        (2, 9),
        (2, 3),
        (1, 4),
        (3, 4),
        (3, 12),
        (11, 12),
    ]
}

/// The expected answer of `SPG(3, 7)` on [`figure3_graph`] (the green
/// subgraph of Figure 3(a)).
pub fn figure3_spg_3_7_edges() -> Vec<(VertexId, VertexId)> {
    vec![(1, 3), (3, 4), (1, 2), (2, 4), (2, 5), (5, 7)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::bfs_distances;

    #[test]
    fn figure3_distances_match_its_labels() {
        let g = figure3_graph();
        let d1 = bfs_distances(&g, 1);
        // L(7) = (1,3) (2,2) (5,1) (7,0) from Figure 3(b).
        assert_eq!(d1[7], 3);
        let d2 = bfs_distances(&g, 2);
        assert_eq!(d2[7], 2);
        assert_eq!(d2[3], 2);
        assert_eq!(bfs_distances(&g, 3)[7], 4);
    }

    #[test]
    fn figure4_distances_match_its_labels() {
        let g = figure4_graph();
        // Path labelling of Figure 4(c) (distance component only).
        let cases: &[(u32, u32, u32)] = &[
            (4, 1, 1),
            (4, 3, 1),
            (5, 1, 1),
            (5, 3, 3),
            (6, 1, 1),
            (7, 1, 2),
            (7, 2, 2),
            (8, 2, 1),
            (9, 2, 1),
            (10, 2, 2),
            (10, 3, 3),
            (11, 2, 3),
            (11, 3, 2),
            (12, 3, 1),
            (13, 1, 3),
            (13, 3, 1),
            (14, 1, 2),
            (14, 3, 2),
        ];
        for &(v, r, expect) in cases {
            assert_eq!(bfs_distances(&g, r)[v as usize], expect, "d({v},{r})");
        }
        // Meta-graph weights of Figure 4(b).
        assert_eq!(bfs_distances(&g, 1)[2], 1);
        assert_eq!(bfs_distances(&g, 1)[3], 2);
        assert_eq!(bfs_distances(&g, 2)[3], 1);
    }

    #[test]
    fn figure4_query_6_11_has_distance_5() {
        let g = figure4_graph();
        assert_eq!(bfs_distances(&g, 6)[11], 5);
    }

    #[test]
    fn figure1b_has_three_disjoint_paths() {
        let g = figure1b_graph();
        let dag = crate::traversal::shortest_path_dag(&g, 0);
        assert_eq!(dag.dist[7], 3);
        assert_eq!(dag.count_paths_to(7), 3);
    }
}
