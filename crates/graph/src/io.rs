//! Graph serialisation: whitespace-separated edge lists (the format used by
//! SNAP / KONECT datasets referenced in §6.1) and a compact binary format
//! for caching generated graphs between experiment runs.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::builder::GraphBuilder;
use crate::csr::Graph;
use crate::error::GraphError;
use crate::vertex::VertexId;
use crate::Result;

/// Magic bytes identifying the binary graph format (`QBSG` + version 1).
const MAGIC: &[u8; 5] = b"QBSG1";

/// Parses an edge list from a reader.
///
/// Each non-empty line that does not start with `#` or `%` must contain two
/// whitespace-separated vertex ids; any further columns (weights, timestamps)
/// are ignored, matching how the paper treats all datasets as unweighted.
pub fn read_edge_list<R: Read>(reader: R) -> Result<Graph> {
    let mut builder = GraphBuilder::new();
    let buf = BufReader::new(reader);
    for (idx, line) in buf.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let parse = |tok: Option<&str>| -> Option<VertexId> { tok?.parse().ok() };
        match (parse(parts.next()), parse(parts.next())) {
            (Some(u), Some(v)) => {
                builder.add_edge(u, v);
            }
            _ => {
                return Err(GraphError::ParseEdge {
                    line: idx + 1,
                    content: line,
                });
            }
        }
    }
    Ok(builder.build())
}

/// Reads an edge-list file from disk.
pub fn read_edge_list_file<P: AsRef<Path>>(path: P) -> Result<Graph> {
    read_edge_list(std::fs::File::open(path)?)
}

/// Writes the graph as an edge list (one `u v` line per undirected edge).
pub fn write_edge_list<W: Write>(graph: &Graph, writer: W) -> Result<()> {
    let mut out = BufWriter::new(writer);
    writeln!(
        out,
        "# qbs edge list: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    )?;
    for (u, v) in graph.edges() {
        writeln!(out, "{u} {v}")?;
    }
    out.flush()?;
    Ok(())
}

/// Writes the graph as an edge-list file.
pub fn write_edge_list_file<P: AsRef<Path>>(graph: &Graph, path: P) -> Result<()> {
    write_edge_list(graph, std::fs::File::create(path)?)
}

/// Encodes the graph into the compact binary format.
///
/// Layout: magic, `u64` vertex count, `u64` arc count, then the CSR arrays
/// (degrees as `u32`, neighbours as `u32`), all little-endian.
pub fn encode_binary(graph: &Graph) -> Vec<u8> {
    let n = graph.num_vertices();
    let mut buf = Vec::with_capacity(MAGIC.len() + 16 + 4 * n + 4 * graph.num_arcs());
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&(n as u64).to_le_bytes());
    buf.extend_from_slice(&(graph.num_arcs() as u64).to_le_bytes());
    for v in graph.vertices() {
        buf.extend_from_slice(&(graph.degree(v) as u32).to_le_bytes());
    }
    for v in graph.vertices() {
        for &w in graph.neighbors(v) {
            buf.extend_from_slice(&w.to_le_bytes());
        }
    }
    buf
}

/// Little-endian reads off a byte cursor (replaces the `bytes` crate, which
/// is unavailable offline).
struct Cursor<'a> {
    data: &'a [u8],
}

impl Cursor<'_> {
    fn remaining(&self) -> usize {
        self.data.len()
    }

    fn advance(&mut self, count: usize) {
        self.data = &self.data[count..];
    }

    fn get_u64_le(&mut self) -> u64 {
        let (head, tail) = self.data.split_at(8);
        self.data = tail;
        u64::from_le_bytes(head.try_into().expect("8-byte slice"))
    }

    fn get_u32_le(&mut self) -> u32 {
        let (head, tail) = self.data.split_at(4);
        self.data = tail;
        u32::from_le_bytes(head.try_into().expect("4-byte slice"))
    }
}

/// Decodes a graph from the binary format produced by [`encode_binary`].
pub fn decode_binary(data: &[u8]) -> Result<Graph> {
    if data.len() < MAGIC.len() + 16 || &data[..MAGIC.len()] != MAGIC {
        return Err(GraphError::InvalidFormat("missing QBSG1 header".into()));
    }
    let mut buf = Cursor { data };
    buf.advance(MAGIC.len());
    let n = buf.get_u64_le() as usize;
    let arcs = buf.get_u64_le() as usize;
    // Checked arithmetic: a crafted header with huge counts must yield a
    // clean error, not an overflowed bounds check and an allocation abort.
    let need = n
        .checked_add(arcs)
        .and_then(|slots| slots.checked_mul(4))
        .ok_or_else(|| GraphError::InvalidFormat("header counts overflow".into()))?;
    if buf.remaining() < need {
        return Err(GraphError::InvalidFormat(format!(
            "truncated payload: need {need} bytes, have {}",
            buf.remaining()
        )));
    }
    let mut offsets = Vec::with_capacity(n + 1);
    offsets.push(0u64);
    for _ in 0..n {
        let d = buf.get_u32_le() as u64;
        offsets.push(offsets.last().expect("non-empty") + d);
    }
    if *offsets.last().expect("non-empty") as usize != arcs {
        return Err(GraphError::InvalidFormat(
            "degree sum does not match arc count".into(),
        ));
    }
    let mut neighbors = Vec::with_capacity(arcs);
    for _ in 0..arcs {
        let w = buf.get_u32_le();
        if w as usize >= n {
            return Err(GraphError::VertexOutOfRange {
                vertex: w as u64,
                num_vertices: n as u64,
            });
        }
        neighbors.push(w);
    }
    Ok(Graph::from_csr_parts(offsets, neighbors))
}

/// Writes the binary format to a file.
pub fn write_binary_file<P: AsRef<Path>>(graph: &Graph, path: P) -> Result<()> {
    std::fs::write(path, encode_binary(graph))?;
    Ok(())
}

/// Reads the binary format from a file.
pub fn read_binary_file<P: AsRef<Path>>(path: P) -> Result<Graph> {
    decode_binary(&std::fs::read(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{figure3_graph, figure4_graph};

    #[test]
    fn edge_list_roundtrip() {
        let g = figure4_graph();
        let mut text = Vec::new();
        write_edge_list(&g, &mut text).expect("write");
        let back = read_edge_list(&text[..]).expect("read");
        // Vertex 0 / 14 are isolated so the parsed graph may have fewer
        // trailing vertices; compare edges instead.
        assert_eq!(
            g.edges().collect::<Vec<_>>(),
            back.edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn edge_list_ignores_comments_and_extra_columns() {
        let text = "# comment\n% another\n0 1 42\n1 2\n\n2 3 weight\n";
        let g = read_edge_list(text.as_bytes()).expect("read");
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.num_vertices(), 4);
    }

    #[test]
    fn edge_list_rejects_garbage() {
        let err = read_edge_list("0 1\nnot an edge\n".as_bytes()).unwrap_err();
        match err {
            GraphError::ParseEdge { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn edge_list_rejects_single_column() {
        assert!(read_edge_list("42\n".as_bytes()).is_err());
    }

    #[test]
    fn binary_roundtrip_preserves_graph_exactly() {
        for g in [figure3_graph(), figure4_graph()] {
            let bytes = encode_binary(&g);
            let back = decode_binary(&bytes).expect("decode");
            assert_eq!(g, back);
        }
    }

    #[test]
    fn binary_rejects_bad_magic_and_truncation() {
        let g = figure3_graph();
        let mut bytes = encode_binary(&g);
        assert!(decode_binary(&bytes[..10]).is_err());
        bytes[0] = b'X';
        assert!(decode_binary(&bytes).is_err());
        assert!(decode_binary(&[]).is_err());
    }

    #[test]
    fn binary_rejects_overflowing_header_counts() {
        // A crafted header whose `4 * (n + arcs)` overflows usize must be
        // rejected as malformed, not crash on an absurd allocation.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&0x4000_0000_0000_0000u64.to_le_bytes()); // n
        bytes.extend_from_slice(&0x4000_0000_0000_0000u64.to_le_bytes()); // arcs
        bytes.extend_from_slice(&[0u8; 32]);
        let err = decode_binary(&bytes).unwrap_err();
        assert!(matches!(err, GraphError::InvalidFormat(_)), "got {err:?}");
    }

    #[test]
    fn binary_rejects_out_of_range_neighbor() {
        let g = figure3_graph();
        let mut bytes = encode_binary(&g);
        let len = bytes.len();
        // Corrupt the last neighbour id to a huge value.
        bytes[len - 4..].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_binary(&bytes).is_err());
    }

    #[test]
    fn file_roundtrips() {
        let dir = std::env::temp_dir().join("qbs_graph_io_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let g = figure4_graph();

        let bin = dir.join("g.qbsg");
        write_binary_file(&g, &bin).expect("write bin");
        assert_eq!(read_binary_file(&bin).expect("read bin"), g);

        let txt = dir.join("g.edges");
        write_edge_list_file(&g, &txt).expect("write txt");
        let back = read_edge_list_file(&txt).expect("read txt");
        assert_eq!(
            g.edges().collect::<Vec<_>>(),
            back.edges().collect::<Vec<_>>()
        );
    }
}
