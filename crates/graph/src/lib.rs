//! # qbs-graph
//!
//! Compact graph substrate underpinning the Query-by-Sketch (QbS)
//! shortest-path-graph engine.
//!
//! The crate provides:
//!
//! * [`Graph`] — an immutable, cache-friendly CSR (compressed sparse row)
//!   representation of an undirected, unweighted graph, the data model used
//!   throughout the paper (directed inputs are symmetrised, matching §6.1
//!   "We treated graphs in these datasets as being undirected").
//! * [`GraphBuilder`] — a mutable edge accumulator that deduplicates edges,
//!   drops self-loops, optionally restricts to the largest connected
//!   component and finally freezes into a [`Graph`].
//! * [`VertexFilter`] / [`FilteredGraph`] — a zero-copy "sparsified" view
//!   `G[V \ R]` obtained by removing a vertex set (the landmarks) without
//!   rebuilding the CSR; this is the search substrate of QbS §4.3.
//! * Traversal primitives: single-source BFS ([`traversal`]), bounded and
//!   bidirectional BFS ([`bibfs`]), connected components ([`components`]).
//! * [`PathGraph`] — the answer type of a shortest-path-graph query
//!   (Definition 2.2 of the paper), shared by QbS and every baseline.
//! * Statistics ([`stats`]) and I/O ([`io`]) used by the experiment harness
//!   to regenerate Table 1.
//!
//! # Example
//!
//! ```
//! use qbs_graph::{GraphBuilder, traversal};
//!
//! // The 7-vertex example graph from Figure 3(a) of the paper.
//! let edges = [(1u32, 2), (1, 3), (1, 4), (2, 3), (2, 4), (2, 5), (2, 6), (5, 6), (5, 7)];
//! let graph = GraphBuilder::from_edges(edges.iter().copied()).build();
//! assert_eq!(graph.num_vertices(), 8); // vertex 0 exists but is isolated
//! let dist = traversal::bfs_distances(&graph, 3);
//! assert_eq!(dist[7], 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bibfs;
pub mod builder;
pub mod components;
pub mod csr;
pub mod error;
pub mod fixtures;
pub mod io;
pub mod path_graph;
pub mod stats;
pub mod traversal;
pub mod view;
pub mod workspace;

mod vertex;

pub use builder::GraphBuilder;
pub use csr::Graph;
pub use error::GraphError;
pub use path_graph::PathGraph;
pub use vertex::{Distance, VertexId, INFINITE_DISTANCE, INVALID_VERTEX};
pub use view::{FilteredGraph, VertexFilter};
pub use workspace::{DistanceField, VisitedSet};

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, GraphError>;
