//! The answer type of a shortest-path-graph query.
//!
//! A [`PathGraph`] is the subgraph `G_uv` of Definition 2.2: its edge set is
//! the union of the edges of *every* shortest path between the two query
//! vertices, and its vertex set is the union of their vertices. The type is
//! shared by QbS and all baselines so that answers can be compared
//! structurally in tests and experiments.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use crate::vertex::{Distance, VertexId, INFINITE_DISTANCE};

/// A shortest path graph `G_uv`: the exact union of all shortest paths
/// between a pair of query vertices.
///
/// Edges are stored in a canonical form — `(min, max)` endpoint order, sorted
/// and deduplicated — so two `PathGraph` values compare equal iff they
/// describe the same subgraph.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PathGraph {
    source: VertexId,
    target: VertexId,
    distance: Distance,
    edges: Vec<(VertexId, VertexId)>,
}

impl PathGraph {
    /// Creates the answer for an unreachable pair (empty edge set, infinite
    /// distance).
    pub fn unreachable(source: VertexId, target: VertexId) -> Self {
        PathGraph {
            source,
            target,
            distance: INFINITE_DISTANCE,
            edges: Vec::new(),
        }
    }

    /// Creates the trivial answer for a query with identical endpoints.
    pub fn trivial(v: VertexId) -> Self {
        PathGraph {
            source: v,
            target: v,
            distance: 0,
            edges: Vec::new(),
        }
    }

    /// Creates a path graph from a raw edge list.
    ///
    /// Edges are canonicalised (unordered endpoints, deduplicated);
    /// self-loops are dropped.
    pub fn from_edges<I>(source: VertexId, target: VertexId, distance: Distance, edges: I) -> Self
    where
        I: IntoIterator<Item = (VertexId, VertexId)>,
    {
        let set: BTreeSet<(VertexId, VertexId)> = edges
            .into_iter()
            .filter(|&(a, b)| a != b)
            .map(|(a, b)| if a <= b { (a, b) } else { (b, a) })
            .collect();
        PathGraph {
            source,
            target,
            distance,
            edges: set.into_iter().collect(),
        }
    }

    /// The query source vertex `u`.
    pub fn source(&self) -> VertexId {
        self.source
    }

    /// The query target vertex `v`.
    pub fn target(&self) -> VertexId {
        self.target
    }

    /// The shortest-path distance `d_G(u, v)` ([`INFINITE_DISTANCE`] when
    /// the endpoints are disconnected).
    pub fn distance(&self) -> Distance {
        self.distance
    }

    /// Whether the endpoints are connected at all.
    pub fn is_reachable(&self) -> bool {
        self.distance != INFINITE_DISTANCE
    }

    /// The canonical sorted edge list.
    pub fn edges(&self) -> &[(VertexId, VertexId)] {
        &self.edges
    }

    /// Number of edges in the answer subgraph.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The vertex set `V(G_uv)` in sorted order. For a non-trivial reachable
    /// query this is every endpoint of every answer edge; for a trivial
    /// (`u == v`) or unreachable query it contains only the endpoints.
    pub fn vertices(&self) -> Vec<VertexId> {
        if self.edges.is_empty() {
            let mut v = vec![self.source, self.target];
            v.sort_unstable();
            v.dedup();
            return v;
        }
        let set: BTreeSet<VertexId> = self.edges.iter().flat_map(|&(a, b)| [a, b]).collect();
        set.into_iter().collect()
    }

    /// Number of distinct vertices in the answer subgraph.
    pub fn num_vertices(&self) -> usize {
        self.vertices().len()
    }

    /// Whether the undirected edge `{a, b}` is part of the answer.
    pub fn contains_edge(&self, a: VertexId, b: VertexId) -> bool {
        let key = if a <= b { (a, b) } else { (b, a) };
        self.edges.binary_search(&key).is_ok()
    }

    /// Whether `v` lies on at least one shortest path of the answer.
    pub fn contains_vertex(&self, v: VertexId) -> bool {
        if self.edges.is_empty() {
            return v == self.source || v == self.target;
        }
        self.edges.iter().any(|&(a, b)| a == v || b == v)
    }

    /// Merges another partial answer into this one (used by QbS to combine
    /// `G⁻_uv` and `G^L_uv` per Eq. 5, and by PPL to combine recursive
    /// sub-answers). The endpoints and distance of `self` are kept.
    pub fn union_with(&mut self, other: &PathGraph) {
        if other.edges.is_empty() {
            return;
        }
        let mut set: BTreeSet<(VertexId, VertexId)> = self.edges.iter().copied().collect();
        set.extend(other.edges.iter().copied());
        self.edges = set.into_iter().collect();
    }

    /// Adds a single edge, keeping the canonical representation.
    pub fn insert_edge(&mut self, a: VertexId, b: VertexId) {
        if a == b {
            return;
        }
        let key = if a <= b { (a, b) } else { (b, a) };
        if let Err(pos) = self.edges.binary_search(&key) {
            self.edges.insert(pos, key);
        }
    }

    /// Returns the answer with source and target swapped (the SPG itself is
    /// symmetric, so only the metadata changes).
    pub fn reversed(&self) -> PathGraph {
        PathGraph {
            source: self.target,
            target: self.source,
            distance: self.distance,
            edges: self.edges.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonicalises_edges() {
        let a = PathGraph::from_edges(0, 3, 2, [(3u32, 1), (1, 0), (0, 1), (2, 2)]);
        assert_eq!(a.edges(), &[(0, 1), (1, 3)]);
        assert_eq!(a.num_edges(), 2);
        assert!(a.contains_edge(1, 0));
        assert!(a.contains_edge(3, 1));
        assert!(!a.contains_edge(0, 3));
    }

    #[test]
    fn equality_ignores_insertion_order_and_direction() {
        let a = PathGraph::from_edges(0, 2, 2, [(0u32, 1), (1, 2)]);
        let b = PathGraph::from_edges(0, 2, 2, [(2u32, 1), (1, 0)]);
        assert_eq!(a, b);
    }

    #[test]
    fn vertices_cover_all_edge_endpoints() {
        let a = PathGraph::from_edges(0, 3, 2, [(0u32, 1), (1, 3), (0, 2), (2, 3)]);
        assert_eq!(a.vertices(), vec![0, 1, 2, 3]);
        assert_eq!(a.num_vertices(), 4);
        assert!(a.contains_vertex(2));
        assert!(!a.contains_vertex(9));
    }

    #[test]
    fn unreachable_and_trivial_answers() {
        let u = PathGraph::unreachable(4, 7);
        assert!(!u.is_reachable());
        assert_eq!(u.num_edges(), 0);
        assert_eq!(u.vertices(), vec![4, 7]);

        let t = PathGraph::trivial(5);
        assert!(t.is_reachable());
        assert_eq!(t.distance(), 0);
        assert_eq!(t.vertices(), vec![5]);
        assert!(t.contains_vertex(5));
        assert!(!t.contains_vertex(4));
    }

    #[test]
    fn union_merges_edge_sets() {
        let mut a = PathGraph::from_edges(0, 3, 3, [(0u32, 1), (1, 3)]);
        let b = PathGraph::from_edges(0, 3, 3, [(0u32, 2), (2, 3), (1, 3)]);
        a.union_with(&b);
        assert_eq!(a.edges(), &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        assert_eq!(a.source(), 0);
        assert_eq!(a.distance(), 3);
    }

    #[test]
    fn insert_edge_keeps_sorted_dedup_invariant() {
        let mut a = PathGraph::from_edges(0, 2, 2, [(0u32, 1)]);
        a.insert_edge(2, 1);
        a.insert_edge(1, 2);
        a.insert_edge(1, 1);
        assert_eq!(a.edges(), &[(0, 1), (1, 2)]);
    }

    #[test]
    fn reversed_swaps_endpoints_only() {
        let a = PathGraph::from_edges(0, 2, 2, [(0u32, 1), (1, 2)]);
        let r = a.reversed();
        assert_eq!(r.source(), 2);
        assert_eq!(r.target(), 0);
        assert_eq!(r.edges(), a.edges());
    }

    #[test]
    fn serde_roundtrip() {
        let a = PathGraph::from_edges(0, 3, 2, [(0u32, 1), (1, 3)]);
        let json = serde_json::to_string(&a).expect("serialize");
        let b: PathGraph = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(a, b);
    }
}
