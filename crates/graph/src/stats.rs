//! Graph statistics used to regenerate Table 1 and Figure 7 of the paper.

use serde::{Deserialize, Serialize};

use crate::csr::Graph;
use crate::traversal::bfs_distances;
use crate::vertex::{Distance, VertexId, INFINITE_DISTANCE};

/// Summary statistics of one graph — the columns of Table 1.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GraphStats {
    /// Number of vertices `|V|`.
    pub num_vertices: usize,
    /// Number of undirected edges `|E_un|`.
    pub num_edges: usize,
    /// Maximum degree.
    pub max_degree: usize,
    /// Average degree `2|E| / |V|`.
    pub avg_degree: f64,
    /// Average shortest-path distance over a sample of connected pairs
    /// (`None` when no connected pair was sampled).
    pub avg_distance: Option<f64>,
    /// Adjacency-structure size in bytes (the `|G|` column of Table 1).
    pub size_bytes: usize,
}

impl GraphStats {
    /// Computes the statistics. `distance_sample_pairs` pairs of vertices are
    /// sampled deterministically (a fixed stride over the vertex range) to
    /// estimate the average distance, mirroring the 10 000-pair sampling of
    /// the paper without requiring an RNG in this crate.
    pub fn compute(graph: &Graph, distance_sample_pairs: usize) -> Self {
        let avg_distance = if distance_sample_pairs == 0 || graph.num_vertices() < 2 {
            None
        } else {
            average_distance_sampled(graph, distance_sample_pairs)
        };
        GraphStats {
            num_vertices: graph.num_vertices(),
            num_edges: graph.num_edges(),
            max_degree: graph.max_degree(),
            avg_degree: graph.avg_degree(),
            avg_distance,
            size_bytes: graph.size_bytes(),
        }
    }
}

/// Estimates the average shortest-path distance from a deterministic sample
/// of source vertices (one BFS per source).
fn average_distance_sampled(graph: &Graph, pairs: usize) -> Option<f64> {
    let n = graph.num_vertices();
    // One BFS per ~sqrt(pairs) sources gives roughly `pairs` distances while
    // keeping the work bounded.
    let sources = ((pairs as f64).sqrt().ceil() as usize).clamp(1, n);
    let stride = (n / sources).max(1);
    let mut total: u64 = 0;
    let mut count: u64 = 0;
    for s in (0..n).step_by(stride).take(sources) {
        let dist = bfs_distances(graph, s as VertexId);
        for (v, &d) in dist.iter().enumerate() {
            if v != s && d != INFINITE_DISTANCE {
                total += d as u64;
                count += 1;
            }
        }
    }
    if count == 0 {
        None
    } else {
        Some(total as f64 / count as f64)
    }
}

/// Histogram of pairwise distances — the data behind Figure 7.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DistanceHistogram {
    /// `counts[d]` is the number of sampled pairs at distance `d`.
    pub counts: Vec<u64>,
    /// Number of sampled pairs that were disconnected.
    pub unreachable: u64,
}

impl DistanceHistogram {
    /// Records one observed distance.
    pub fn record(&mut self, d: Distance) {
        if d == INFINITE_DISTANCE {
            self.unreachable += 1;
            return;
        }
        let idx = d as usize;
        if self.counts.len() <= idx {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
    }

    /// Total number of recorded pairs (reachable + unreachable).
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.unreachable
    }

    /// Fraction of pairs at each distance (the y-axis of Figure 7).
    pub fn fractions(&self) -> Vec<f64> {
        let total = self.total();
        if total == 0 {
            return Vec::new();
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / total as f64)
            .collect()
    }

    /// Mean distance of the reachable pairs, if any.
    pub fn mean(&self) -> Option<f64> {
        let reachable: u64 = self.counts.iter().sum();
        if reachable == 0 {
            return None;
        }
        let weighted: u64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(d, &c)| d as u64 * c)
            .sum();
        Some(weighted as f64 / reachable as f64)
    }

    /// The most common distance, if any pair was reachable.
    pub fn mode(&self) -> Option<Distance> {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .max_by_key(|&(_, &c)| c)
            .map(|(d, _)| d as Distance)
    }
}

/// Degree distribution: `counts[d]` is the number of vertices of degree `d`.
pub fn degree_distribution(graph: &Graph) -> Vec<u64> {
    let mut counts = vec![0u64; graph.max_degree() + 1];
    for v in graph.vertices() {
        counts[graph.degree(v)] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::figure4_graph;
    use crate::GraphBuilder;

    #[test]
    fn stats_of_figure4_graph() {
        let g = figure4_graph();
        let s = GraphStats::compute(&g, 100);
        assert_eq!(s.num_vertices, 15);
        assert_eq!(s.num_edges, 19);
        assert_eq!(s.max_degree, 4);
        assert!(s.avg_degree > 2.0 && s.avg_degree < 3.0);
        assert!(s.avg_distance.unwrap() > 1.0);
        assert_eq!(s.size_bytes, g.size_bytes());
    }

    #[test]
    fn stats_without_distance_sampling() {
        let g = figure4_graph();
        let s = GraphStats::compute(&g, 0);
        assert!(s.avg_distance.is_none());
    }

    #[test]
    fn average_distance_of_a_path_graph() {
        // Path 0-1-2-3-4: exact average distance is 2.0.
        let g = GraphBuilder::from_edges([(0u32, 1), (1, 2), (2, 3), (3, 4)]).build();
        let s = GraphStats::compute(&g, 1000);
        let avg = s.avg_distance.unwrap();
        assert!(avg > 1.0 && avg <= 3.0, "avg = {avg}");
    }

    #[test]
    fn histogram_records_and_normalises() {
        let mut h = DistanceHistogram::default();
        for d in [1u32, 2, 2, 3, 3, 3] {
            h.record(d);
        }
        h.record(INFINITE_DISTANCE);
        assert_eq!(h.total(), 7);
        assert_eq!(h.unreachable, 1);
        assert_eq!(h.counts, vec![0, 1, 2, 3]);
        assert_eq!(h.mode(), Some(3));
        let f = h.fractions();
        assert!((f[3] - 3.0 / 7.0).abs() < 1e-12);
        assert!((h.mean().unwrap() - (1.0 + 2.0 + 2.0 + 3.0 * 3.0) / 6.0).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_edge_cases() {
        let h = DistanceHistogram::default();
        assert_eq!(h.total(), 0);
        assert!(h.fractions().is_empty());
        assert!(h.mean().is_none());
        assert!(h.mode().is_none());
    }

    #[test]
    fn degree_distribution_sums_to_vertex_count() {
        let g = figure4_graph();
        let dist = degree_distribution(&g);
        assert_eq!(dist.iter().sum::<u64>() as usize, g.num_vertices());
        assert_eq!(dist.len(), g.max_degree() + 1);
        // Vertex 0 is isolated.
        assert_eq!(dist[0], 1);
    }
}
