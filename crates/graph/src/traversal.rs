//! Single-source breadth-first search primitives.
//!
//! BFS is the workhorse of the entire system: the labelling phase of QbS
//! runs one (two-queue) BFS per landmark, the baselines PPL / ParentPPL run
//! pruned BFSs per vertex, and the ground-truth shortest-path-graph
//! construction runs two full BFSs per query. The functions here are generic
//! over [`NeighborAccess`] so they operate both on a full [`Graph`] and on
//! the sparsified [`crate::FilteredGraph`] view.

use crate::csr::Graph;
use crate::vertex::{Distance, VertexId, INFINITE_DISTANCE};
use crate::view::NeighborAccess;

/// Computes the BFS distance from `source` to every vertex.
///
/// Unreachable (or removed) vertices get [`INFINITE_DISTANCE`].
pub fn bfs_distances<G: NeighborAccess>(graph: &G, source: VertexId) -> Vec<Distance> {
    bfs_distances_bounded(graph, source, INFINITE_DISTANCE)
}

/// Computes BFS distances from `source` into a reusable epoch-stamped
/// [`crate::workspace::DistanceField`], reusing `queue` as scratch.
///
/// The allocation-free sibling of [`bfs_distances`]: after the first call at
/// a given graph size neither the field nor the queue reallocates, which is
/// what the workspace-based query engines build on.
pub fn bfs_distances_into<G: NeighborAccess>(
    graph: &G,
    source: VertexId,
    dist: &mut crate::workspace::DistanceField,
    queue: &mut Vec<VertexId>,
) {
    let n = graph.vertex_count();
    dist.reset(n);
    queue.clear();
    if n == 0 || !graph.contains_vertex(source) {
        return;
    }
    dist.set(source, 0);
    queue.push(source);
    let mut head = 0;
    while head < queue.len() {
        let u = queue[head];
        head += 1;
        let du = dist.get(u);
        graph.for_each_neighbor(u, |v| {
            if !dist.is_set(v) {
                dist.set(v, du + 1);
                queue.push(v);
            }
        });
    }
}

/// Computes BFS distances from `source`, not expanding past `max_depth`.
///
/// Vertices further than `max_depth` (and unreachable vertices) get
/// [`INFINITE_DISTANCE`]. Passing [`INFINITE_DISTANCE`] as the bound yields a
/// full BFS.
pub fn bfs_distances_bounded<G: NeighborAccess>(
    graph: &G,
    source: VertexId,
    max_depth: Distance,
) -> Vec<Distance> {
    let n = graph.vertex_count();
    let mut dist = vec![INFINITE_DISTANCE; n];
    if n == 0 || !graph.contains_vertex(source) {
        return dist;
    }
    dist[source as usize] = 0;
    let mut queue: Vec<VertexId> = Vec::with_capacity(n.min(1024));
    queue.push(source);
    let mut head = 0;
    while head < queue.len() {
        let u = queue[head];
        head += 1;
        let du = dist[u as usize];
        if du >= max_depth {
            continue;
        }
        graph.for_each_neighbor(u, |v| {
            if dist[v as usize] == INFINITE_DISTANCE {
                dist[v as usize] = du + 1;
                queue.push(v);
            }
        });
    }
    dist
}

/// Computes the distance between `u` and `v` with an early-terminating BFS
/// from `u` (stops as soon as `v` is settled).
///
/// Returns [`INFINITE_DISTANCE`] when `v` is unreachable from `u`.
pub fn bfs_distance_to<G: NeighborAccess>(graph: &G, u: VertexId, v: VertexId) -> Distance {
    if u == v {
        return if graph.contains_vertex(u) {
            0
        } else {
            INFINITE_DISTANCE
        };
    }
    let n = graph.vertex_count();
    if !graph.contains_vertex(u) || !graph.contains_vertex(v) {
        return INFINITE_DISTANCE;
    }
    let mut dist = vec![INFINITE_DISTANCE; n];
    dist[u as usize] = 0;
    let mut queue = vec![u];
    let mut head = 0;
    while head < queue.len() {
        let x = queue[head];
        head += 1;
        let dx = dist[x as usize];
        let mut found = false;
        graph.for_each_neighbor(x, |y| {
            if dist[y as usize] == INFINITE_DISTANCE {
                dist[y as usize] = dx + 1;
                if y == v {
                    found = true;
                }
                queue.push(y);
            }
        });
        if found {
            return dist[v as usize];
        }
    }
    dist[v as usize]
}

/// A full BFS tree from `source`: distances plus, for every vertex, the list
/// of *all* parents on shortest paths from `source` (not just one), which is
/// exactly what is needed to enumerate every shortest path.
#[derive(Clone, Debug)]
pub struct ShortestPathDag {
    /// Distance from the source; [`INFINITE_DISTANCE`] when unreachable.
    pub dist: Vec<Distance>,
    /// `parents[v]` lists every neighbour `p` of `v` with
    /// `dist[p] + 1 == dist[v]`.
    pub parents: Vec<Vec<VertexId>>,
    /// The BFS source.
    pub source: VertexId,
}

impl ShortestPathDag {
    /// Number of shortest paths from the source to `v`, saturating at
    /// `u64::MAX`. Computed lazily by dynamic programming over the DAG.
    pub fn count_paths_to(&self, v: VertexId) -> u64 {
        if self.dist[v as usize] == INFINITE_DISTANCE {
            return 0;
        }
        // Process vertices in increasing distance order.
        let mut order: Vec<VertexId> = (0..self.dist.len() as VertexId)
            .filter(|&x| self.dist[x as usize] != INFINITE_DISTANCE)
            .collect();
        order.sort_by_key(|&x| self.dist[x as usize]);
        let mut counts = vec![0u64; self.dist.len()];
        counts[self.source as usize] = 1;
        for &x in &order {
            if x == self.source {
                continue;
            }
            let mut c: u64 = 0;
            for &p in &self.parents[x as usize] {
                c = c.saturating_add(counts[p as usize]);
            }
            counts[x as usize] = c;
        }
        counts[v as usize]
    }
}

/// Builds the [`ShortestPathDag`] rooted at `source`.
pub fn shortest_path_dag(graph: &Graph, source: VertexId) -> ShortestPathDag {
    let dist = bfs_distances(graph, source);
    let n = graph.num_vertices();
    let mut parents = vec![Vec::new(); n];
    for v in graph.vertices() {
        let dv = dist[v as usize];
        if dv == INFINITE_DISTANCE || v == source {
            continue;
        }
        for &p in graph.neighbors(v) {
            if dist[p as usize] != INFINITE_DISTANCE && dist[p as usize] + 1 == dv {
                parents[v as usize].push(p);
            }
        }
    }
    ShortestPathDag {
        dist,
        parents,
        source,
    }
}

/// Computes the eccentricity of `source` (greatest finite BFS distance).
pub fn eccentricity<G: NeighborAccess>(graph: &G, source: VertexId) -> Distance {
    bfs_distances(graph, source)
        .into_iter()
        .filter(|&d| d != INFINITE_DISTANCE)
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::{FilteredGraph, VertexFilter};
    use crate::GraphBuilder;

    use crate::fixtures::figure4_graph;

    #[test]
    fn distances_on_a_path() {
        let g = GraphBuilder::from_edges([(0u32, 1), (1, 2), (2, 3)]).build();
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![0, 1, 2, 3]);
    }

    #[test]
    fn unreachable_vertices_get_infinite_distance() {
        let mut b = GraphBuilder::from_edges([(0u32, 1)]);
        b.reserve_vertices(3);
        let g = b.build();
        let d = bfs_distances(&g, 0);
        assert_eq!(d[2], INFINITE_DISTANCE);
    }

    #[test]
    fn bounded_bfs_stops_at_depth() {
        let g = GraphBuilder::from_edges([(0u32, 1), (1, 2), (2, 3), (3, 4)]).build();
        let d = bfs_distances_bounded(&g, 0, 2);
        assert_eq!(d, vec![0, 1, 2, INFINITE_DISTANCE, INFINITE_DISTANCE]);
    }

    #[test]
    fn distance_to_early_terminates_correctly() {
        let g = figure4_graph();
        assert_eq!(bfs_distance_to(&g, 6, 11), 5);
        assert_eq!(bfs_distance_to(&g, 6, 6), 0);
        assert_eq!(bfs_distance_to(&g, 6, 0), INFINITE_DISTANCE);
        // Cross-check against full BFS for a handful of pairs.
        let full = bfs_distances(&g, 6);
        for v in [1u32, 2, 3, 9, 13] {
            assert_eq!(bfs_distance_to(&g, 6, v), full[v as usize], "vertex {v}");
        }
    }

    #[test]
    fn bfs_on_filtered_graph_respects_removals() {
        let g = figure4_graph();
        let removed = VertexFilter::from_vertices(g.num_vertices(), [1u32, 2, 3]);
        let view = FilteredGraph::new(&g, &removed);
        let d = bfs_distances(&view, 6);
        // Example 4.8: in the sparsified graph the only shortest path
        // 6 → 11 is 6-7-8-9-10-11 of length 5; vertex 4 becomes unreachable.
        assert_eq!(d[11], 5);
        assert_eq!(d[6], 0);
        assert_eq!(d[4], INFINITE_DISTANCE);
        assert_eq!(d[1], INFINITE_DISTANCE);
        // A removed source yields all-infinite distances.
        let d2 = bfs_distances(&view, 1);
        assert!(d2.iter().all(|&x| x == INFINITE_DISTANCE));
    }

    #[test]
    fn dag_records_all_parents() {
        // A 4-cycle has two shortest paths between opposite corners.
        let g = GraphBuilder::from_edges([(0u32, 1), (1, 2), (2, 3), (3, 0)]).build();
        let dag = shortest_path_dag(&g, 0);
        assert_eq!(dag.dist[2], 2);
        let mut parents = dag.parents[2].clone();
        parents.sort_unstable();
        assert_eq!(parents, vec![1, 3]);
        assert_eq!(dag.count_paths_to(2), 2);
        assert_eq!(dag.count_paths_to(0), 1);
    }

    #[test]
    fn path_counting_on_figure1_style_graphs() {
        // Figure 1(b)-style: three parallel length-3 paths between u=0, v=7.
        let g = GraphBuilder::from_edges([
            (0u32, 1),
            (1, 2),
            (2, 7),
            (0, 3),
            (3, 4),
            (4, 7),
            (0, 5),
            (5, 6),
            (6, 7),
        ])
        .build();
        let dag = shortest_path_dag(&g, 0);
        assert_eq!(dag.dist[7], 3);
        assert_eq!(dag.count_paths_to(7), 3);
    }

    #[test]
    fn path_count_zero_for_unreachable() {
        let mut b = GraphBuilder::from_edges([(0u32, 1)]);
        b.reserve_vertices(3);
        let g = b.build();
        let dag = shortest_path_dag(&g, 0);
        assert_eq!(dag.count_paths_to(2), 0);
    }

    #[test]
    fn eccentricity_of_path_endpoint() {
        let g = GraphBuilder::from_edges([(0u32, 1), (1, 2), (2, 3)]).build();
        assert_eq!(eccentricity(&g, 0), 3);
        assert_eq!(eccentricity(&g, 1), 2);
    }

    #[test]
    fn bfs_on_empty_graph() {
        let g = GraphBuilder::new().build();
        assert!(bfs_distances(&g, 0).is_empty());
    }
}
