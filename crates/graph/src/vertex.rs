//! Core scalar types: vertex identifiers and distances.

/// Identifier of a vertex.
///
/// Vertices are dense integers in `0..Graph::num_vertices()`. A `u32` keeps
/// adjacency arrays and distance labels compact (4 bytes per entry), which is
/// the same representation the paper uses for its labels ("we use 32 bits
/// ... to represent a landmark", §6.1).
pub type VertexId = u32;

/// Sentinel for "no vertex" (used by parent arrays and packed queues).
pub const INVALID_VERTEX: VertexId = VertexId::MAX;

/// Shortest-path distance in an unweighted graph (number of hops).
pub type Distance = u32;

/// Sentinel distance meaning "unreachable" / "not yet visited".
pub const INFINITE_DISTANCE: Distance = Distance::MAX;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sentinels_are_extreme_values() {
        assert_eq!(INVALID_VERTEX, u32::MAX);
        assert_eq!(INFINITE_DISTANCE, u32::MAX);
    }

    #[test]
    fn distances_order_below_sentinel() {
        let plausible: Distance = 1_000_000;
        assert!(plausible < INFINITE_DISTANCE);
    }
}
