//! Sparsified graph views.
//!
//! QbS performs its online guided search on the sparsified graph
//! `G⁻ = G[V \ R]` obtained by deleting the landmark vertices and every edge
//! incident to them (§4.3). Rebuilding a CSR per landmark set would be
//! wasteful, so [`FilteredGraph`] exposes a zero-copy view over the original
//! [`Graph`] that simply skips removed vertices during traversal. The paper
//! notes that removing the 20 highest-degree landmarks removes only a few
//! percent of all edges but a much larger fraction of the edges traversed by
//! queries (§6.5) — the view makes that sparsification free.

use serde::{Deserialize, Serialize};

use crate::csr::Graph;
use crate::vertex::VertexId;

/// Abstraction over "something with adjacency lists" so that the traversal
/// primitives work identically on a full [`Graph`] and on a sparsified
/// [`FilteredGraph`] view.
pub trait NeighborAccess {
    /// Number of vertex slots (removed vertices still occupy a slot so that
    /// per-vertex arrays can be indexed by the original ids).
    fn vertex_count(&self) -> usize;

    /// Whether `v` is present in this view.
    fn contains_vertex(&self, v: VertexId) -> bool;

    /// Calls `visit` for every neighbour of `v` present in this view.
    fn for_each_neighbor<F: FnMut(VertexId)>(&self, v: VertexId, visit: F);

    /// Degree of `v` within this view.
    fn view_degree(&self, v: VertexId) -> usize {
        let mut d = 0;
        self.for_each_neighbor(v, |_| d += 1);
        d
    }
}

impl NeighborAccess for Graph {
    #[inline]
    fn vertex_count(&self) -> usize {
        self.num_vertices()
    }

    #[inline]
    fn contains_vertex(&self, v: VertexId) -> bool {
        (v as usize) < self.num_vertices()
    }

    #[inline]
    fn for_each_neighbor<F: FnMut(VertexId)>(&self, v: VertexId, mut visit: F) {
        for &w in self.neighbors(v) {
            visit(w);
        }
    }

    #[inline]
    fn view_degree(&self, v: VertexId) -> usize {
        self.degree(v)
    }
}

/// A compact bitset marking a set of removed (or selected) vertices.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VertexFilter {
    bits: Vec<u64>,
    num_vertices: usize,
    num_set: usize,
}

impl VertexFilter {
    /// Creates an empty filter (nothing removed) for a graph with
    /// `num_vertices` vertices.
    pub fn new(num_vertices: usize) -> Self {
        VertexFilter {
            bits: vec![0; num_vertices.div_ceil(64)],
            num_vertices,
            num_set: 0,
        }
    }

    /// Creates a filter with the given vertices marked.
    pub fn from_vertices<I>(num_vertices: usize, vertices: I) -> Self
    where
        I: IntoIterator<Item = VertexId>,
    {
        let mut f = Self::new(num_vertices);
        for v in vertices {
            f.insert(v);
        }
        f
    }

    /// Marks `v`. Returns `true` if it was newly marked.
    pub fn insert(&mut self, v: VertexId) -> bool {
        assert!((v as usize) < self.num_vertices, "vertex {v} out of range");
        let (word, bit) = (v as usize / 64, v as usize % 64);
        let mask = 1u64 << bit;
        if self.bits[word] & mask == 0 {
            self.bits[word] |= mask;
            self.num_set += 1;
            true
        } else {
            false
        }
    }

    /// Unmarks `v`. Returns `true` if it was previously marked.
    pub fn remove(&mut self, v: VertexId) -> bool {
        if (v as usize) >= self.num_vertices {
            return false;
        }
        let (word, bit) = (v as usize / 64, v as usize % 64);
        let mask = 1u64 << bit;
        if self.bits[word] & mask != 0 {
            self.bits[word] &= !mask;
            self.num_set -= 1;
            true
        } else {
            false
        }
    }

    /// Makes `self` an exact copy of `other`, reusing the existing bit
    /// buffer when capacities allow (no allocation in the steady state of a
    /// query loop).
    pub fn copy_from(&mut self, other: &VertexFilter) {
        self.bits.clear();
        self.bits.extend_from_slice(&other.bits);
        self.num_vertices = other.num_vertices;
        self.num_set = other.num_set;
    }

    /// Whether `v` is marked.
    #[inline]
    pub fn contains(&self, v: VertexId) -> bool {
        let idx = v as usize;
        if idx >= self.num_vertices {
            return false;
        }
        self.bits[idx / 64] & (1u64 << (idx % 64)) != 0
    }

    /// Number of marked vertices.
    pub fn len(&self) -> usize {
        self.num_set
    }

    /// Whether no vertex is marked.
    pub fn is_empty(&self) -> bool {
        self.num_set == 0
    }

    /// Number of vertex slots covered by the filter.
    pub fn capacity(&self) -> usize {
        self.num_vertices
    }

    /// Iterator over marked vertices in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.num_vertices as VertexId).filter(move |&v| self.contains(v))
    }
}

/// A view of `graph` with the vertices in `removed` (and their incident
/// edges) deleted — the sparsified graph `G[V \ R]` of the paper.
#[derive(Clone, Copy, Debug)]
pub struct FilteredGraph<'a> {
    graph: &'a Graph,
    removed: &'a VertexFilter,
}

impl<'a> FilteredGraph<'a> {
    /// Creates a view of `graph` without the vertices marked in `removed`.
    ///
    /// # Panics
    ///
    /// Panics if the filter was sized for a different graph.
    pub fn new(graph: &'a Graph, removed: &'a VertexFilter) -> Self {
        assert_eq!(
            graph.num_vertices(),
            removed.capacity(),
            "filter capacity must match graph size"
        );
        FilteredGraph { graph, removed }
    }

    /// The underlying full graph.
    pub fn full_graph(&self) -> &'a Graph {
        self.graph
    }

    /// The removed-vertex filter.
    pub fn removed(&self) -> &'a VertexFilter {
        self.removed
    }

    /// Number of remaining (non-removed) vertices.
    pub fn remaining_vertices(&self) -> usize {
        self.graph.num_vertices() - self.removed.len()
    }

    /// Counts the undirected edges that survive the sparsification
    /// (both endpoints present). Linear in the number of arcs.
    pub fn remaining_edges(&self) -> usize {
        self.graph
            .edges()
            .filter(|&(u, v)| !self.removed.contains(u) && !self.removed.contains(v))
            .count()
    }
}

impl NeighborAccess for FilteredGraph<'_> {
    #[inline]
    fn vertex_count(&self) -> usize {
        self.graph.num_vertices()
    }

    #[inline]
    fn contains_vertex(&self, v: VertexId) -> bool {
        (v as usize) < self.graph.num_vertices() && !self.removed.contains(v)
    }

    #[inline]
    fn for_each_neighbor<F: FnMut(VertexId)>(&self, v: VertexId, mut visit: F) {
        if self.removed.contains(v) {
            return;
        }
        for &w in self.graph.neighbors(v) {
            if !self.removed.contains(w) {
                visit(w);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn star_with_path() -> Graph {
        // Vertex 0 is a hub connected to 1..=4; additionally a path 1-2-3-4.
        GraphBuilder::from_edges([(0u32, 1), (0, 2), (0, 3), (0, 4), (1, 2), (2, 3), (3, 4)])
            .build()
    }

    #[test]
    fn filter_insert_and_contains() {
        let mut f = VertexFilter::new(10);
        assert!(f.is_empty());
        assert!(f.insert(3));
        assert!(!f.insert(3));
        assert!(f.contains(3));
        assert!(!f.contains(4));
        assert!(!f.contains(99));
        assert_eq!(f.len(), 1);
        assert_eq!(f.capacity(), 10);
    }

    #[test]
    fn filter_iter_lists_marked_vertices_in_order() {
        let f = VertexFilter::from_vertices(100, [70, 3, 64]);
        assert_eq!(f.iter().collect::<Vec<_>>(), vec![3, 64, 70]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn filter_insert_rejects_out_of_range() {
        VertexFilter::new(4).insert(4);
    }

    #[test]
    fn filtered_graph_hides_removed_vertices() {
        let g = star_with_path();
        let removed = VertexFilter::from_vertices(g.num_vertices(), [0u32]);
        let view = FilteredGraph::new(&g, &removed);

        assert_eq!(view.remaining_vertices(), 4);
        assert_eq!(view.remaining_edges(), 3);
        assert!(!view.contains_vertex(0));
        assert!(view.contains_vertex(1));

        let mut n1 = Vec::new();
        view.for_each_neighbor(1, |v| n1.push(v));
        assert_eq!(n1, vec![2]);

        // Neighbours of a removed vertex are not visited at all.
        let mut n0 = Vec::new();
        view.for_each_neighbor(0, |v| n0.push(v));
        assert!(n0.is_empty());
    }

    #[test]
    fn graph_implements_neighbor_access() {
        let g = star_with_path();
        assert_eq!(NeighborAccess::vertex_count(&g), 5);
        assert_eq!(g.view_degree(0), 4);
        let mut seen = Vec::new();
        g.for_each_neighbor(0, |v| seen.push(v));
        assert_eq!(seen, vec![1, 2, 3, 4]);
    }

    #[test]
    fn view_degree_counts_only_surviving_neighbors() {
        let g = star_with_path();
        let removed = VertexFilter::from_vertices(g.num_vertices(), [0u32, 3]);
        let view = FilteredGraph::new(&g, &removed);
        assert_eq!(view.view_degree(2), 1); // only vertex 1 remains adjacent
        assert_eq!(view.view_degree(4), 0);
    }

    #[test]
    #[should_panic(expected = "filter capacity")]
    fn filtered_graph_rejects_mismatched_filter() {
        let g = star_with_path();
        let removed = VertexFilter::new(3);
        let _ = FilteredGraph::new(&g, &removed);
    }
}
