//! Epoch-stamped scratch structures for zero-allocation query loops.
//!
//! Every online query in this workspace (the QbS guided search, the Bi-BFS
//! baseline, the ground-truth double BFS) needs per-vertex scratch state:
//! distance fields and visited sets sized to the graph. Allocating and
//! zeroing `O(|V|)` memory per query dominates latency on large graphs —
//! the exact tax the paper's microsecond-level query times cannot afford.
//!
//! The structures here amortise that cost with the classic *epoch stamping*
//! (generation counter) trick: alongside each value slot lives a `u32`
//! stamp, and a slot is considered initialised only when its stamp equals
//! the structure's current epoch. "Clearing" the whole structure is then a
//! single `epoch += 1` — O(1) instead of O(|V|) — and the backing arrays
//! are allocated once and reused for the lifetime of the workspace. When
//! the epoch counter would wrap around `u32::MAX`, the stamps are lazily
//! bulk-reset once every ~4 billion queries, preserving correctness.

use crate::vertex::{Distance, VertexId, INFINITE_DISTANCE};

/// Bumps `epoch`, bulk-resetting `stamps` on the (rare) wrap-around.
fn advance_epoch(epoch: &mut u32, stamps: &mut [u32]) {
    if *epoch == u32::MAX {
        stamps.fill(0);
        *epoch = 1;
    } else {
        *epoch += 1;
    }
}

/// A per-vertex distance field with O(1) reset.
///
/// Semantically equivalent to `vec![INFINITE_DISTANCE; n]` re-created per
/// query, but [`DistanceField::reset`] costs O(1) after the first use at a
/// given size (growth re-allocates, steady state does not).
#[derive(Clone, Debug, Default)]
pub struct DistanceField {
    stamps: Vec<u32>,
    values: Vec<Distance>,
    epoch: u32,
}

impl DistanceField {
    /// Creates an empty field; [`DistanceField::reset`] sizes it.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears the field for a graph with `n` vertex slots.
    pub fn reset(&mut self, n: usize) {
        if self.stamps.len() < n {
            self.stamps.resize(n, 0);
            self.values.resize(n, INFINITE_DISTANCE);
            // Fresh slots carry stamp 0; make sure the active epoch differs.
            if self.epoch == 0 {
                self.epoch = 1;
                return;
            }
        }
        advance_epoch(&mut self.epoch, &mut self.stamps);
    }

    /// The distance of `v`, or [`INFINITE_DISTANCE`] when unset.
    #[inline]
    pub fn get(&self, v: VertexId) -> Distance {
        let idx = v as usize;
        if self.stamps[idx] == self.epoch {
            self.values[idx]
        } else {
            INFINITE_DISTANCE
        }
    }

    /// Whether `v` has been assigned a distance since the last reset.
    #[inline]
    pub fn is_set(&self, v: VertexId) -> bool {
        self.stamps[v as usize] == self.epoch
    }

    /// Assigns the distance of `v`.
    #[inline]
    pub fn set(&mut self, v: VertexId, distance: Distance) {
        let idx = v as usize;
        self.stamps[idx] = self.epoch;
        self.values[idx] = distance;
    }

    /// Number of vertex slots currently backed.
    pub fn capacity(&self) -> usize {
        self.stamps.len()
    }
}

/// A per-vertex visited set with O(1) reset (the epoch-stamped analogue of
/// `vec![false; n]` or a fresh `HashSet`).
#[derive(Clone, Debug, Default)]
pub struct VisitedSet {
    stamps: Vec<u32>,
    epoch: u32,
}

impl VisitedSet {
    /// Creates an empty set; [`VisitedSet::reset`] sizes it.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears the set for a graph with `n` vertex slots.
    pub fn reset(&mut self, n: usize) {
        if self.stamps.len() < n {
            self.stamps.resize(n, 0);
            if self.epoch == 0 {
                self.epoch = 1;
                return;
            }
        }
        advance_epoch(&mut self.epoch, &mut self.stamps);
    }

    /// Whether `v` is in the set.
    #[inline]
    pub fn contains(&self, v: VertexId) -> bool {
        self.stamps[v as usize] == self.epoch
    }

    /// Inserts `v`; returns `true` when it was newly inserted.
    #[inline]
    pub fn insert(&mut self, v: VertexId) -> bool {
        let idx = v as usize;
        if self.stamps[idx] == self.epoch {
            false
        } else {
            self.stamps[idx] = self.epoch;
            true
        }
    }

    /// Number of vertex slots currently backed.
    pub fn capacity(&self) -> usize {
        self.stamps.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_field_resets_in_o1() {
        let mut field = DistanceField::new();
        field.reset(8);
        assert_eq!(field.get(3), INFINITE_DISTANCE);
        assert!(!field.is_set(3));
        field.set(3, 7);
        assert_eq!(field.get(3), 7);
        assert!(field.is_set(3));

        field.reset(8);
        assert_eq!(
            field.get(3),
            INFINITE_DISTANCE,
            "reset must clear all slots"
        );
        field.set(3, 1);
        assert_eq!(field.get(3), 1);
    }

    #[test]
    fn distance_field_grows_on_demand() {
        let mut field = DistanceField::new();
        field.reset(4);
        field.set(0, 5);
        field.reset(16);
        assert_eq!(field.capacity(), 16);
        for v in 0..16u32 {
            assert_eq!(field.get(v), INFINITE_DISTANCE, "vertex {v}");
        }
    }

    #[test]
    fn visited_set_insert_semantics() {
        let mut set = VisitedSet::new();
        set.reset(4);
        assert!(set.insert(2));
        assert!(!set.insert(2));
        assert!(set.contains(2));
        set.reset(4);
        assert!(!set.contains(2));
        assert!(set.insert(2));
    }

    #[test]
    fn epoch_wraparound_bulk_resets() {
        let mut set = VisitedSet::new();
        set.reset(4);
        set.insert(1);
        // Force the epoch to the wrap-around point.
        set.epoch = u32::MAX - 1;
        set.stamps[0] = u32::MAX - 1; // stale entry stamped "visited"
        set.reset(4); // epoch -> MAX
        assert!(!set.contains(0));
        set.insert(3);
        set.reset(4); // wraps: stamps bulk-reset, epoch -> 1
        assert_eq!(set.epoch, 1);
        assert!(!set.contains(3));
        assert!(set.insert(3));

        let mut field = DistanceField::new();
        field.reset(2);
        field.epoch = u32::MAX;
        field.stamps[1] = u32::MAX;
        field.values[1] = 9;
        assert_eq!(field.get(1), 9);
        field.reset(2);
        assert_eq!(field.epoch, 1);
        assert_eq!(field.get(1), INFINITE_DISTANCE);
    }

    #[test]
    fn fresh_structures_start_unset() {
        // Regression guard: new slots carry stamp 0, so the first active
        // epoch must not be 0.
        let mut field = DistanceField::new();
        field.reset(3);
        assert!((0..3u32).all(|v| !field.is_set(v)));
        let mut set = VisitedSet::new();
        set.reset(3);
        assert!((0..3u32).all(|v| !set.contains(v)));
    }
}
