//! Property-based tests of the graph substrate: CSR invariants, I/O
//! round-trips, traversal consistency and component structure on arbitrary
//! edge lists.

use proptest::prelude::*;

use qbs_graph::bibfs::bidirectional_distance;
use qbs_graph::components::{connected_components, is_connected, largest_component};
use qbs_graph::traversal::{bfs_distances, shortest_path_dag};
use qbs_graph::{io, Graph, GraphBuilder, VertexFilter, INFINITE_DISTANCE};

fn arbitrary_graph(max_vertices: u32, max_edges: usize) -> impl Strategy<Value = Graph> {
    prop::collection::vec((0..max_vertices, 0..max_vertices), 0..max_edges).prop_map(move |edges| {
        let mut b = GraphBuilder::from_edges(edges);
        b.reserve_vertices(max_vertices as usize);
        b.build()
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn csr_adjacency_is_sorted_symmetric_and_loop_free(graph in arbitrary_graph(64, 256)) {
        for v in graph.vertices() {
            let adj = graph.neighbors(v);
            prop_assert!(adj.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(!adj.contains(&v));
            for &w in adj {
                prop_assert!(graph.has_edge(w, v));
            }
        }
        prop_assert_eq!(graph.num_arcs(), 2 * graph.num_edges());
        prop_assert_eq!(graph.edges().count(), graph.num_edges());
    }

    #[test]
    fn binary_and_edge_list_roundtrips(graph in arbitrary_graph(48, 200)) {
        let decoded = io::decode_binary(&io::encode_binary(&graph)).expect("binary roundtrip");
        prop_assert_eq!(&decoded, &graph);

        let mut text = Vec::new();
        io::write_edge_list(&graph, &mut text).expect("write edge list");
        let parsed = io::read_edge_list(&text[..]).expect("read edge list");
        prop_assert_eq!(
            graph.edges().collect::<Vec<_>>(),
            parsed.edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn bidirectional_distance_matches_bfs(
        graph in arbitrary_graph(48, 180),
        u in 0u32..48,
        v in 0u32..48,
    ) {
        let bfs = bfs_distances(&graph, u);
        let bi = bidirectional_distance(&graph, u, v);
        prop_assert_eq!(bi.distance, bfs[v as usize]);
    }

    #[test]
    fn bfs_distances_satisfy_the_triangle_property(
        graph in arbitrary_graph(40, 160),
        source in 0u32..40,
    ) {
        // Along every edge, BFS distances differ by at most one.
        let dist = bfs_distances(&graph, source);
        for (a, b) in graph.edges() {
            let (da, db) = (dist[a as usize], dist[b as usize]);
            match (da, db) {
                (INFINITE_DISTANCE, INFINITE_DISTANCE) => {}
                (INFINITE_DISTANCE, _) | (_, INFINITE_DISTANCE) => {
                    prop_assert!(false, "edge ({a},{b}) straddles reachability");
                }
                (da, db) => prop_assert!(da.abs_diff(db) <= 1),
            }
        }
    }

    #[test]
    fn shortest_path_dag_parents_are_consistent(
        graph in arbitrary_graph(40, 150),
        source in 0u32..40,
    ) {
        let dag = shortest_path_dag(&graph, source);
        for v in graph.vertices() {
            for &p in &dag.parents[v as usize] {
                prop_assert!(graph.has_edge(p, v));
                prop_assert_eq!(dag.dist[p as usize] + 1, dag.dist[v as usize]);
            }
            if v != source && dag.dist[v as usize] != INFINITE_DISTANCE {
                prop_assert!(!dag.parents[v as usize].is_empty());
                prop_assert!(dag.count_paths_to(v) >= 1);
            }
        }
    }

    #[test]
    fn components_partition_the_vertices(graph in arbitrary_graph(50, 160)) {
        let comps = connected_components(&graph);
        prop_assert_eq!(comps.sizes.iter().sum::<usize>(), graph.num_vertices());
        for (a, b) in graph.edges() {
            prop_assert!(comps.connected(a, b));
        }
        let (sub, map) = largest_component(&graph);
        prop_assert!(is_connected(&sub));
        prop_assert_eq!(sub.num_vertices(), map.len());
        if !graph.is_empty() {
            prop_assert_eq!(sub.num_vertices(), *comps.sizes.iter().max().unwrap());
        }
    }

    #[test]
    fn filtered_views_only_remove_the_marked_vertices(
        graph in arbitrary_graph(40, 140),
        marked in prop::collection::vec(0u32..40, 0..10),
    ) {
        use qbs_graph::view::NeighborAccess;
        let filter = VertexFilter::from_vertices(graph.num_vertices(), marked.iter().copied());
        let view = qbs_graph::FilteredGraph::new(&graph, &filter);
        prop_assert_eq!(view.remaining_vertices(), graph.num_vertices() - filter.len());
        for v in graph.vertices() {
            let mut seen = Vec::new();
            view.for_each_neighbor(v, |w| seen.push(w));
            if filter.contains(v) {
                prop_assert!(seen.is_empty());
            } else {
                let expected: Vec<_> = graph
                    .neighbors(v)
                    .iter()
                    .copied()
                    .filter(|&w| !filter.contains(w))
                    .collect();
                prop_assert_eq!(seen, expected);
            }
        }
    }
}
