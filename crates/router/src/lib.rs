//! # qbs-router
//!
//! The replicated scatter/gather serving tier: a [`QbsRouter`] process
//! accepts client connections on the exact same framed TCP protocol as
//! `qbs serve` (reusing the `qbs-server` reactor via
//! [`qbs_server::ServeBackend`]) and scatters each incoming batch across
//! a pool of backend replicas, gathering the outcomes back into slot
//! order so routed answers are **bit-identical** to a single-process
//! [`qbs_core::Qbs::submit`] over the same index.
//!
//! The crate is **std-only**, like the rest of the workspace. Pieces:
//!
//! * [`pool`] — the [`ReplicaPool`]: per-replica idle-connection reuse,
//!   least-in-flight balancing, and the health state machine
//!   (consecutive-failure ejection, exponential-backoff re-admission,
//!   half-open probing);
//! * [`shard`] — the [`ShardMap`] routing table: replica groups keyed by
//!   vertex range, currently one full-replication group (the partitioned
//!   follow-up is a data change, not a redesign);
//! * [`router`] — [`RouterConfig`] / [`QbsRouter`] / [`RouterHandle`]
//!   and the scatter/gather [`RouterBackend`]: contiguous sub-batches to
//!   the least-loaded healthy replicas, pipelined sends before any
//!   gather, bounded retry onto different replicas on `Busy` sheds and
//!   connection failures, and typed
//!   `RequestError::Unavailable` per-slot fills when every replica is
//!   down — never a hang. A background prober pings replicas each
//!   interval so a replica that dies while idle is ejected before
//!   traffic hits it.
//!
//! Observability rides the normal `Stats` frame: the router answers it
//! with per-replica engine counters merged into one
//! [`qbs_core::EngineStats`] plus a [`qbs_core::RouterStats`] section
//! (per-replica request counts, retries, ejections, failure totals,
//! in-flight gauges) that `qbs client --stats` renders. The `Metrics`
//! frame answers with every replica's latency histograms merged
//! bucket-wise into the router's own routing-tier stages, client trace
//! IDs are propagated onto every scattered sub-batch (so one slow
//! request is findable in replica slow-query logs), and
//! [`RouterConfig::metrics_addr`] exposes the merged registry over HTTP
//! `GET /metrics`. See `docs/router.md` for topology and
//! `docs/observability.md` for the metric families.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod pool;
pub mod router;
pub mod shard;

pub use pool::{HealthConfig, Replica, ReplicaPool};
pub use router::{QbsRouter, RouterBackend, RouterConfig, RouterHandle};
pub use shard::{ShardGroup, ShardMap};
