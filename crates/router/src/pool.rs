//! The replica pool: per-replica connection reuse, least-in-flight
//! balancing, and the health/ejection state machine.
//!
//! A [`Replica`] is one backend `qbs serve` process. The pool keeps a
//! stack of idle pipelined [`QbsClient`] connections per replica (a
//! checkout pops one or dials a fresh one; a checkin after a clean
//! exchange pushes it back), an in-flight request gauge the balancer
//! sorts on, and a tiny health state machine:
//!
//! * every failed exchange (dial, I/O, protocol fault) bumps a
//!   consecutive-failure counter; reaching
//!   [`HealthConfig::eject_after`] **ejects** the replica for the
//!   current backoff window;
//! * the backoff doubles per ejection up to
//!   [`HealthConfig::backoff_max`], so a flapping replica is probed at a
//!   gentle cadence instead of hammered;
//! * once the window expires the replica is *half-open*: eligible for
//!   traffic and probes again, and one success
//!   ([`Replica::record_success`]) fully re-admits it (resetting the
//!   failure count and the backoff ladder).
//!
//! `Busy` sheds are **not** health failures — a shedding replica is
//! healthy, just loaded — the router retries them elsewhere without
//! touching the failure counter.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use qbs_core::ReplicaStats;
use qbs_server::{ClientConfig, ProtocolError, QbsClient};

/// Cap on idle connections retained per replica; extras are dropped at
/// checkin. Bounds the router's fd footprint to
/// `replicas × IDLE_PER_REPLICA` plus whatever is in flight.
const IDLE_PER_REPLICA: usize = 8;

/// Health/ejection knobs shared by the serve path and the prober.
#[derive(Clone, Copy, Debug)]
pub struct HealthConfig {
    /// Consecutive failures that eject a replica.
    pub eject_after: u32,
    /// First ejection window.
    pub backoff_initial: Duration,
    /// Ceiling of the per-ejection doubling.
    pub backoff_max: Duration,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            eject_after: 3,
            backoff_initial: Duration::from_millis(250),
            backoff_max: Duration::from_secs(8),
        }
    }
}

/// Mutable health state, guarded by one mutex per replica.
#[derive(Debug)]
struct Health {
    consecutive_failures: u32,
    /// `Some(until)` while ejected; past `until` the replica is
    /// half-open (eligible again, one failure re-ejects with a doubled
    /// window).
    ejected_until: Option<Instant>,
    /// Next ejection window.
    backoff: Duration,
}

/// One backend replica: address, idle connections, gauges, health.
#[derive(Debug)]
pub struct Replica {
    addr: String,
    idle: Mutex<Vec<QbsClient>>,
    in_flight: AtomicU64,
    requests: AtomicU64,
    batches: AtomicU64,
    retries: AtomicU64,
    ejections: AtomicU64,
    failures: AtomicU64,
    health: Mutex<Health>,
}

impl Replica {
    fn new(addr: String, health: &HealthConfig) -> Replica {
        Replica {
            addr,
            idle: Mutex::new(Vec::new()),
            in_flight: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            ejections: AtomicU64::new(0),
            failures: AtomicU64::new(0),
            health: Mutex::new(Health {
                consecutive_failures: 0,
                ejected_until: None,
                backoff: health.backoff_initial,
            }),
        }
    }

    /// The replica's dial address.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Whether the replica may receive traffic now: never ejected, or
    /// its ejection window has expired (half-open).
    pub fn is_available(&self, now: Instant) -> bool {
        let health = self.health.lock().expect("health poisoned");
        match health.ejected_until {
            Some(until) => now >= until,
            None => true,
        }
    }

    /// Requests currently outstanding against this replica.
    pub fn in_flight(&self) -> u64 {
        self.in_flight.load(Ordering::SeqCst)
    }

    /// Pops an idle connection or dials a fresh one.
    pub fn checkout(&self, config: ClientConfig) -> Result<QbsClient, ProtocolError> {
        if let Some(client) = self.idle.lock().expect("idle pool poisoned").pop() {
            return Ok(client);
        }
        QbsClient::connect_with(&self.addr, config)
    }

    /// Returns a connection after a clean exchange. Connections that
    /// faulted are simply dropped instead — never checked back in.
    pub fn checkin(&self, client: QbsClient) {
        let mut idle = self.idle.lock().expect("idle pool poisoned");
        if idle.len() < IDLE_PER_REPLICA {
            idle.push(client);
        }
    }

    /// Marks `n` requests as shipped to this replica.
    pub fn start_requests(&self, n: u64) {
        self.in_flight.fetch_add(n, Ordering::SeqCst);
        self.requests.fetch_add(n, Ordering::SeqCst);
        self.batches.fetch_add(1, Ordering::SeqCst);
    }

    /// Marks `n` previously started requests as resolved (answered or
    /// abandoned).
    pub fn finish_requests(&self, n: u64) {
        self.in_flight.fetch_sub(n, Ordering::SeqCst);
    }

    /// Counts `n` requests retried *away* from this replica.
    pub fn count_retries(&self, n: u64) {
        self.retries.fetch_add(n, Ordering::SeqCst);
    }

    /// A successful exchange: resets the failure count, closes any
    /// ejection, and restarts the backoff ladder.
    pub fn record_success(&self, config: &HealthConfig) {
        let mut health = self.health.lock().expect("health poisoned");
        health.consecutive_failures = 0;
        health.ejected_until = None;
        health.backoff = config.backoff_initial;
    }

    /// A failed exchange (dial, I/O, protocol fault — *not* a `Busy`
    /// shed). Returns `true` when this failure ejected the replica.
    pub fn record_failure(&self, config: &HealthConfig) -> bool {
        self.failures.fetch_add(1, Ordering::SeqCst);
        let mut health = self.health.lock().expect("health poisoned");
        health.consecutive_failures += 1;
        if health.consecutive_failures < config.eject_after.max(1) {
            return false;
        }
        health.consecutive_failures = 0;
        health.ejected_until = Some(Instant::now() + health.backoff);
        health.backoff = health.backoff.saturating_mul(2).min(config.backoff_max);
        self.ejections.fetch_add(1, Ordering::SeqCst);
        // Connections to an ejected replica are stale by definition;
        // drop them so re-admission starts from fresh dials.
        self.idle.lock().expect("idle pool poisoned").clear();
        true
    }

    /// Counter snapshot for the routed `Stats` frame.
    pub fn stats(&self) -> ReplicaStats {
        let (healthy, consecutive_failures) = {
            let health = self.health.lock().expect("health poisoned");
            let healthy = match health.ejected_until {
                Some(until) => Instant::now() >= until,
                None => true,
            };
            (healthy, u64::from(health.consecutive_failures))
        };
        ReplicaStats {
            addr: self.addr.clone(),
            healthy,
            requests: self.requests.load(Ordering::SeqCst),
            batches: self.batches.load(Ordering::SeqCst),
            retries: self.retries.load(Ordering::SeqCst),
            ejections: self.ejections.load(Ordering::SeqCst),
            in_flight: self.in_flight.load(Ordering::SeqCst),
            consecutive_failures,
            failures: self.failures.load(Ordering::SeqCst),
        }
    }
}

/// The full set of replicas plus the shared client configuration.
#[derive(Debug)]
pub struct ReplicaPool {
    replicas: Vec<Replica>,
    client: ClientConfig,
    health: HealthConfig,
}

impl ReplicaPool {
    /// Builds the pool. No connections are dialled here — the first
    /// checkout (or the prober's first pass) does that.
    pub fn new(addrs: Vec<String>, client: ClientConfig, health: HealthConfig) -> ReplicaPool {
        ReplicaPool {
            replicas: addrs
                .into_iter()
                .map(|addr| Replica::new(addr, &health))
                .collect(),
            client,
            health,
        }
    }

    /// Number of replicas (healthy or not).
    pub fn len(&self) -> usize {
        self.replicas.len()
    }

    /// Whether the pool has no replicas at all.
    pub fn is_empty(&self) -> bool {
        self.replicas.is_empty()
    }

    /// The replicas, indexed as the shard map references them.
    pub fn replicas(&self) -> &[Replica] {
        &self.replicas
    }

    /// The client configuration every checkout dials with.
    pub fn client_config(&self) -> ClientConfig {
        self.client
    }

    /// The health knobs shared with the prober.
    pub fn health_config(&self) -> &HealthConfig {
        &self.health
    }

    /// Replicas currently eligible for traffic.
    pub fn available(&self, now: Instant) -> usize {
        self.replicas.iter().filter(|r| r.is_available(now)).count()
    }

    /// Picks the best replica among `candidates` (fewest in-flight
    /// requests, ties to the lowest index) that is not in `exclude`,
    /// preferring available replicas. When **every** candidate is
    /// ejected — the all-replicas-down regime — the least-loaded ejected
    /// one is returned anyway: a bounded dial attempt with a typed
    /// failure beats refusing outright, and it doubles as a half-open
    /// probe. Returns `None` only when `exclude` exhausts `candidates`.
    pub fn pick(&self, candidates: &[usize], exclude: &[usize]) -> Option<usize> {
        let now = Instant::now();
        let eligible = |available_only: bool| {
            candidates
                .iter()
                .copied()
                .filter(|i| !exclude.contains(i))
                .filter(|&i| !available_only || self.replicas[i].is_available(now))
                .min_by_key(|&i| (self.replicas[i].in_flight(), i))
        };
        eligible(true).or_else(|| eligible(false))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(n: usize) -> ReplicaPool {
        let addrs = (0..n).map(|i| format!("127.0.0.1:{}", 7500 + i)).collect();
        ReplicaPool::new(addrs, ClientConfig::default(), HealthConfig::default())
    }

    #[test]
    fn pick_prefers_least_in_flight() {
        let pool = pool(3);
        pool.replicas()[0].start_requests(10);
        pool.replicas()[1].start_requests(2);
        pool.replicas()[2].start_requests(5);
        assert_eq!(pool.pick(&[0, 1, 2], &[]), Some(1));
        assert_eq!(pool.pick(&[0, 1, 2], &[1]), Some(2));
        assert_eq!(pool.pick(&[0, 1, 2], &[1, 2]), Some(0));
        assert_eq!(pool.pick(&[0, 1, 2], &[0, 1, 2]), None);
    }

    #[test]
    fn ejection_requires_consecutive_failures_and_backs_off() {
        let health = HealthConfig {
            eject_after: 3,
            backoff_initial: Duration::from_millis(50),
            backoff_max: Duration::from_millis(100),
        };
        let pool = ReplicaPool::new(
            vec!["127.0.0.1:7599".into()],
            ClientConfig::default(),
            health,
        );
        let replica = &pool.replicas()[0];
        assert!(!replica.record_failure(&health));
        replica.record_success(&health);
        assert!(!replica.record_failure(&health));
        assert!(!replica.record_failure(&health));
        assert!(replica.record_failure(&health), "third consecutive ejects");
        assert!(!replica.is_available(Instant::now()));
        assert!(replica.is_available(Instant::now() + Duration::from_millis(60)));
        let stats = replica.stats();
        assert_eq!(stats.ejections, 1);
        assert!(!stats.healthy);
    }

    #[test]
    fn all_ejected_still_picks_a_victim() {
        let health = HealthConfig {
            eject_after: 1,
            backoff_initial: Duration::from_secs(60),
            backoff_max: Duration::from_secs(60),
        };
        let pool = ReplicaPool::new(
            vec!["127.0.0.1:7601".into(), "127.0.0.1:7602".into()],
            ClientConfig::default(),
            health,
        );
        assert!(pool.replicas()[0].record_failure(&health));
        assert!(pool.replicas()[1].record_failure(&health));
        assert_eq!(pool.available(Instant::now()), 0);
        assert!(
            pool.pick(&[0, 1], &[]).is_some(),
            "all-down must not refuse"
        );
    }

    #[test]
    fn half_open_success_readmits_and_resets_the_ladder() {
        let health = HealthConfig {
            eject_after: 1,
            backoff_initial: Duration::from_millis(10),
            backoff_max: Duration::from_millis(80),
        };
        let pool = ReplicaPool::new(
            vec!["127.0.0.1:7603".into()],
            ClientConfig::default(),
            health,
        );
        let replica = &pool.replicas()[0];
        assert!(replica.record_failure(&health)); // window: 10ms, next 20ms
        assert!(replica.record_failure(&health)); // window: 20ms, next 40ms
        replica.record_success(&health);
        assert!(replica.is_available(Instant::now()));
        // Ladder restarted: the next ejection uses the initial window.
        assert!(replica.record_failure(&health));
        assert!(replica.is_available(Instant::now() + Duration::from_millis(15)));
    }
}
