//! The router process: the protocol v2 reactor front-end wired to a
//! scatter/gather [`ServeBackend`] over a [`ReplicaPool`], plus the
//! health prober.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use qbs_core::{
    CacheStats, EngineStats, Metrics, MetricsSnapshot, QueryOutcome, QueryRequest, RequestError,
    RouterStats, Stage, StageNanos, TraceId,
};
use qbs_server::{
    AdmissionConfig, AdmissionStats, BatchReply, ClientConfig, QbsClient, QbsServer, ServeBackend,
    ServerConfig, ServerHandle, ServerStats, ShutdownSignal, Ticket,
};

use crate::pool::{HealthConfig, Replica, ReplicaPool};
use crate::shard::ShardMap;

/// How often [`RouterHandle::wait`] re-checks the shutdown latch.
const WAIT_POLL: Duration = Duration::from_millis(100);

/// Configuration of a [`QbsRouter`] — built fluently like
/// [`ServerConfig`]:
///
/// ```
/// use qbs_router::RouterConfig;
/// let config = RouterConfig::bind("127.0.0.1:0")
///     .replica("127.0.0.1:7411")
///     .replica("127.0.0.1:7412")
///     .workers(8);
/// ```
#[derive(Clone, Debug)]
pub struct RouterConfig {
    /// Bind address of the router's own listener; port 0 picks an
    /// ephemeral port.
    pub addr: String,
    /// Worker threads gathering scattered batches. Each routed batch
    /// occupies one worker for its slowest replica round-trip, so this
    /// bounds concurrent *batches*, not connections.
    pub workers: usize,
    /// Admission bounds on the router's own listener.
    pub admission: AdmissionConfig,
    /// Backend replica addresses (`host:port` of `qbs serve` processes).
    pub replicas: Vec<String>,
    /// Client configuration for every replica connection. The default
    /// shortens `connect_timeout` to 1s: a dead replica should cost the
    /// serve path one bounded dial, not the stock 5s.
    pub client: ClientConfig,
    /// Ejection/backoff knobs.
    pub health: HealthConfig,
    /// Cadence of the background `Ping` prober.
    pub probe_interval: Duration,
    /// How many *additional* replicas a sub-batch may be retried onto
    /// after its first pick fails or sheds. Bounds the ping-pong of a
    /// batch that every replica refuses.
    pub max_retries: usize,
    /// Smallest sub-batch worth scattering: a batch of `n` requests is
    /// split across at most `n / min_split` replicas (always at least
    /// one), so tiny batches do not pay per-replica round-trip overhead
    /// for a handful of microsecond queries.
    pub min_split: usize,
    /// Bind address for the router's own HTTP `GET /metrics` listener
    /// (`None` disables it), passed through to the inner server.
    pub metrics_addr: Option<String>,
    /// Slow-query log threshold on routed batches (`None` disables the
    /// log), passed through to the inner server.
    pub slow_query: Option<Duration>,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            admission: AdmissionConfig::default(),
            replicas: Vec::new(),
            client: ClientConfig::default().connect_timeout(Duration::from_secs(1)),
            health: HealthConfig::default(),
            probe_interval: Duration::from_millis(500),
            max_retries: 2,
            min_split: 8,
            metrics_addr: None,
            slow_query: None,
        }
    }
}

impl RouterConfig {
    /// Starts a config bound to `addr` (the rest defaulted).
    pub fn bind(addr: impl Into<String>) -> RouterConfig {
        RouterConfig {
            addr: addr.into(),
            ..RouterConfig::default()
        }
    }

    /// Appends one backend replica address.
    pub fn replica(mut self, addr: impl Into<String>) -> RouterConfig {
        self.replicas.push(addr.into());
        self
    }

    /// Replaces the replica list.
    pub fn replicas(mut self, replicas: Vec<String>) -> RouterConfig {
        self.replicas = replicas;
        self
    }

    /// Sets the gather worker-pool size.
    pub fn workers(mut self, workers: usize) -> RouterConfig {
        self.workers = workers;
        self
    }

    /// Replaces the router's own admission configuration.
    pub fn admission(mut self, admission: AdmissionConfig) -> RouterConfig {
        self.admission = admission;
        self
    }

    /// Replaces the replica-side client configuration.
    pub fn client(mut self, client: ClientConfig) -> RouterConfig {
        self.client = client;
        self
    }

    /// Replaces the health/ejection knobs.
    pub fn health(mut self, health: HealthConfig) -> RouterConfig {
        self.health = health;
        self
    }

    /// Sets the prober cadence.
    pub fn probe_interval(mut self, probe_interval: Duration) -> RouterConfig {
        self.probe_interval = probe_interval;
        self
    }

    /// Sets the per-sub-batch retry bound.
    pub fn max_retries(mut self, max_retries: usize) -> RouterConfig {
        self.max_retries = max_retries;
        self
    }

    /// Sets the smallest sub-batch worth scattering.
    pub fn min_split(mut self, min_split: usize) -> RouterConfig {
        self.min_split = min_split;
        self
    }

    /// Enables the HTTP `GET /metrics` listener on `addr`.
    pub fn metrics_addr(mut self, addr: impl Into<String>) -> RouterConfig {
        self.metrics_addr = Some(addr.into());
        self
    }

    /// Logs routed batches that take at least `threshold` to the
    /// slow-query log on stderr.
    pub fn slow_query(mut self, threshold: Duration) -> RouterConfig {
        self.slow_query = Some(threshold);
        self
    }
}

/// The scatter/gather [`ServeBackend`]: what the reactor's workers call
/// into for every routed batch.
#[derive(Debug)]
pub struct RouterBackend {
    pool: ReplicaPool,
    shards: ShardMap,
    max_retries: usize,
    min_split: usize,
    batches_routed: AtomicU64,
    subbatches: AtomicU64,
    retries: AtomicU64,
    unavailable_slots: AtomicU64,
    /// Routing-tier latency registry (queue wait, scatter/gather
    /// execute, wire encode) — merged with replica snapshots on a
    /// `Metrics` frame.
    metrics: Metrics,
}

/// One scattered sub-batch awaiting its gather: the pipelined connection
/// it went out on, which slots of the original batch it answers, and
/// which replicas it has already tried.
struct Shipment {
    replica: usize,
    client: QbsClient,
    ticket: Ticket,
    start: usize,
    len: usize,
    tried: Vec<usize>,
}

impl RouterBackend {
    fn new(pool: ReplicaPool, config: &RouterConfig) -> RouterBackend {
        let shards = ShardMap::full_replication(pool.len());
        RouterBackend {
            pool,
            shards,
            max_retries: config.max_retries,
            min_split: config.min_split.max(1),
            batches_routed: AtomicU64::new(0),
            subbatches: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            unavailable_slots: AtomicU64::new(0),
            metrics: Metrics::new(),
        }
    }

    /// The replica pool (shared with the prober).
    pub fn pool(&self) -> &ReplicaPool {
        &self.pool
    }

    /// The routing table.
    pub fn shards(&self) -> &ShardMap {
        &self.shards
    }

    /// Snapshot of the router-level counters plus every replica's.
    pub fn router_stats(&self) -> RouterStats {
        RouterStats {
            batches_routed: self.batches_routed.load(Ordering::SeqCst),
            subbatches: self.subbatches.load(Ordering::SeqCst),
            retries: self.retries.load(Ordering::SeqCst),
            ejections: self
                .pool
                .replicas()
                .iter()
                .map(|r| r.stats().ejections)
                .sum(),
            unavailable_slots: self.unavailable_slots.load(Ordering::SeqCst),
            replicas: self.pool.replicas().iter().map(Replica::stats).collect(),
        }
    }

    /// Ships one sub-batch to the best untried replica, pipelined.
    /// Returns `None` when the candidate set (bounded by `max_retries`)
    /// is exhausted without a successful send.
    fn ship(
        &self,
        candidates: &[usize],
        slice: &[QueryRequest],
        start: usize,
        trace: TraceId,
        mut tried: Vec<usize>,
    ) -> Option<Shipment> {
        while tried.len() <= self.max_retries {
            let idx = self.pool.pick(candidates, &tried)?;
            if !tried.is_empty() {
                self.retries.fetch_add(1, Ordering::SeqCst);
            }
            tried.push(idx);
            let replica = &self.pool.replicas()[idx];
            let mut client = match replica.checkout(self.pool.client_config()) {
                Ok(client) => client,
                Err(_) => {
                    replica.record_failure(self.pool.health_config());
                    continue;
                }
            };
            match client.send_traced(slice, trace) {
                Ok(ticket) => {
                    replica.start_requests(slice.len() as u64);
                    self.subbatches.fetch_add(1, Ordering::SeqCst);
                    return Some(Shipment {
                        replica: idx,
                        client,
                        ticket,
                        start,
                        len: slice.len(),
                        tried,
                    });
                }
                Err(_) => {
                    replica.record_failure(self.pool.health_config());
                    continue;
                }
            }
        }
        None
    }

    /// Gathers one shipment's reply; on failure or a `Busy` shed,
    /// re-ships the sub-batch to a different replica (still bounded by
    /// the shipment's `tried` budget).
    fn gather(
        &self,
        candidates: &[usize],
        requests: &[QueryRequest],
        trace: TraceId,
        mut shipment: Shipment,
    ) -> Option<Vec<QueryOutcome>> {
        loop {
            let replica = &self.pool.replicas()[shipment.replica];
            let slice = &requests[shipment.start..shipment.start + shipment.len];
            match shipment.client.recv(shipment.ticket) {
                Ok(BatchReply::Outcomes(outcomes)) if outcomes.len() == slice.len() => {
                    replica.finish_requests(shipment.len as u64);
                    replica.record_success(self.pool.health_config());
                    replica.checkin(shipment.client);
                    return Some(outcomes);
                }
                Ok(BatchReply::Outcomes(_)) => {
                    // Slot-count mismatch: the reply cannot be merged
                    // bit-identically. Treat as a protocol failure.
                    replica.finish_requests(shipment.len as u64);
                    replica.record_failure(self.pool.health_config());
                    replica.count_retries(shipment.len as u64);
                }
                Ok(BatchReply::Busy(_)) => {
                    // The replica shed the sub-batch: it is healthy, just
                    // loaded — retry elsewhere without a health demerit.
                    replica.finish_requests(shipment.len as u64);
                    replica.checkin(shipment.client);
                    replica.count_retries(shipment.len as u64);
                }
                Err(_) => {
                    replica.finish_requests(shipment.len as u64);
                    replica.record_failure(self.pool.health_config());
                    replica.count_retries(shipment.len as u64);
                    // The connection faulted mid-exchange — drop it, it
                    // is never checked back in.
                }
            }
            shipment = self.ship(candidates, slice, shipment.start, trace, shipment.tried)?;
        }
    }

    /// Fills a sub-batch whose retry budget is exhausted with typed
    /// per-slot errors — the all-replicas-down answer, never a hang.
    fn fill_unavailable(&self, out: &mut [Option<QueryOutcome>], start: usize, len: usize) {
        self.unavailable_slots
            .fetch_add(len as u64, Ordering::SeqCst);
        let reason = format!(
            "{} replica(s) unreachable or shedding after {} attempt(s)",
            self.pool.len(),
            self.max_retries + 1
        );
        for slot in out.iter_mut().skip(start).take(len) {
            *slot = Some(QueryOutcome::Error(RequestError::Unavailable {
                reason: reason.clone(),
            }));
        }
    }

    /// Scatter/gather. The batch is split into contiguous sub-batches —
    /// one per healthy replica the batch is large enough to occupy (see
    /// [`RouterConfig::min_split`]) — shipped pipelined (all sends
    /// before any gather, so replicas execute concurrently), and merged
    /// back in slot order. The trace ID rides on every sub-batch, so a
    /// slow routed request is findable in the replica slow-query logs.
    /// Outcomes are bit-identical to a single `Qbs::submit` over the
    /// same index: every replica serves the same index, sub-batches
    /// preserve request order, and per-slot errors ride along untouched.
    fn route(&self, requests: &[QueryRequest], trace: TraceId) -> Vec<QueryOutcome> {
        self.batches_routed.fetch_add(1, Ordering::SeqCst);
        if requests.is_empty() {
            return Vec::new();
        }
        // One full-replication group today: every request routes by its
        // source vertex to the same candidate set. A partitioned map
        // would partition the batch across groups here first.
        let candidates = self.shards.group_for(requests[0].source).replicas.clone();
        let now = Instant::now();
        let available = candidates
            .iter()
            .filter(|&&i| self.pool.replicas()[i].is_available(now))
            .count()
            .max(1);
        let k = (requests.len() / self.min_split).clamp(1, available);

        let mut out: Vec<Option<QueryOutcome>> = (0..requests.len()).map(|_| None).collect();
        let mut shipments: Vec<Shipment> = Vec::with_capacity(k);
        let chunk = requests.len().div_ceil(k);
        for start in (0..requests.len()).step_by(chunk.max(1)) {
            let end = (start + chunk).min(requests.len());
            match self.ship(&candidates, &requests[start..end], start, trace, Vec::new()) {
                Some(shipment) => shipments.push(shipment),
                None => self.fill_unavailable(&mut out, start, end - start),
            }
        }
        for shipment in shipments {
            let (start, len) = (shipment.start, shipment.len);
            match self.gather(&candidates, requests, trace, shipment) {
                Some(outcomes) => {
                    for (slot, outcome) in out[start..start + len].iter_mut().zip(outcomes) {
                        *slot = Some(outcome);
                    }
                }
                None => self.fill_unavailable(&mut out, start, len),
            }
        }
        out.into_iter()
            .map(|slot| {
                slot.unwrap_or_else(|| {
                    QueryOutcome::Error(RequestError::Unavailable {
                        reason: "sub-batch lost in routing".to_string(),
                    })
                })
            })
            .collect()
    }
}

impl ServeBackend for RouterBackend {
    /// Untraced entry point — scatter/gather with [`TraceId::NONE`].
    fn execute(&self, requests: &[QueryRequest]) -> Vec<QueryOutcome> {
        self.route(requests, TraceId::NONE)
    }

    /// The traced serve path: routes the batch, records the routing-tier
    /// execute stage (the full scatter/gather round trip) into the
    /// router's own registry, and reports it for the slow-query log.
    fn execute_traced(
        &self,
        requests: &[QueryRequest],
        trace: TraceId,
    ) -> (Vec<QueryOutcome>, StageNanos) {
        let start = Instant::now();
        let outcomes = self.route(requests, trace);
        let exec = start.elapsed();
        self.metrics.record_batch_stage(Stage::Execute, exec);
        let mut stages = StageNanos::default();
        stages.0[Stage::Execute as usize] = exec.as_nanos().min(u128::from(u64::MAX)) as u64;
        (outcomes, stages)
    }

    /// The routed `Metrics` frame: every available replica's snapshot is
    /// fetched over a pooled connection and merged bucket-wise into the
    /// router's own routing-tier histograms, so aggregated quantiles
    /// stay well-defined. Like [`ServeBackend::server_stats`], ejected
    /// replicas are skipped and a failed poll takes a health demerit.
    fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut merged = self.metrics.snapshot();
        let now = Instant::now();
        for replica in self.pool.replicas() {
            if !replica.is_available(now) {
                continue;
            }
            let polled = replica
                .checkout(self.pool.client_config())
                .and_then(|mut client| client.metrics().map(|snapshot| (client, snapshot)));
            match polled {
                Ok((client, snapshot)) => {
                    merged.merge(&snapshot);
                    replica.record_success(self.pool.health_config());
                    replica.checkin(client);
                }
                Err(_) => {
                    replica.record_failure(self.pool.health_config());
                }
            }
        }
        merged
    }

    /// Replica metrics polls are network I/O: never on the reactor.
    fn metrics_inline(&self) -> bool {
        false
    }

    fn obs(&self) -> Option<&Metrics> {
        Some(&self.metrics)
    }

    /// The routed `Stats` frame: per-replica engine counters merged into
    /// one [`EngineStats`] (sums for traffic counters, maxima for index
    /// facts, thread budgets added), the router's own admission snapshot,
    /// and the [`RouterStats`] section. Ejected replicas are skipped —
    /// stats must not stall on dead sockets — and a replica that fails
    /// the poll takes a health demerit exactly like a failed batch.
    fn server_stats(&self, admission: AdmissionStats) -> ServerStats {
        let mut engine = EngineStats::default();
        let now = Instant::now();
        for replica in self.pool.replicas() {
            if !replica.is_available(now) {
                continue;
            }
            let polled = replica
                .checkout(self.pool.client_config())
                .and_then(|mut client| client.stats().map(|stats| (client, stats)));
            match polled {
                Ok((client, stats)) => {
                    merge_engine(&mut engine, &stats.engine);
                    replica.record_success(self.pool.health_config());
                    replica.checkin(client);
                }
                Err(_) => {
                    replica.record_failure(self.pool.health_config());
                }
            }
        }
        ServerStats {
            engine,
            admission,
            router: Some(self.router_stats()),
        }
    }
}

/// Merges one replica's engine counters into the routed aggregate:
/// index facts (vertices, landmarks, view-backedness) describe the same
/// replicated index, so they take maxima/or; traffic counters and
/// thread budgets add.
fn merge_engine(into: &mut EngineStats, from: &EngineStats) {
    into.num_vertices = into.num_vertices.max(from.num_vertices);
    into.num_landmarks = into.num_landmarks.max(from.num_landmarks);
    into.threads += from.threads;
    into.view_backed |= from.view_backed;
    into.requests += from.requests;
    into.batches += from.batches;
    into.errors += from.errors;
    into.planner.dedup_hits += from.planner.dedup_hits;
    into.planner.labels_memoized += from.planner.labels_memoized;
    into.planner.fwd_levels_reused += from.planner.fwd_levels_reused;
    if let Some(cache) = &from.cache {
        let merged = into.cache.get_or_insert_with(CacheStats::default);
        merged.hits += cache.hits;
        merged.misses += cache.misses;
        merged.insertions += cache.insertions;
        merged.rejected += cache.rejected;
        merged.evictions += cache.evictions;
        merged.len += cache.len;
    }
}

/// The prober's stop latch: flag + condvar so shutdown interrupts the
/// inter-probe sleep immediately.
#[derive(Debug)]
struct Stop {
    stopped: Mutex<bool>,
    cv: Condvar,
}

impl Stop {
    fn new() -> Stop {
        Stop {
            stopped: Mutex::new(false),
            cv: Condvar::new(),
        }
    }

    fn trigger(&self) {
        *self.stopped.lock().expect("stop latch poisoned") = true;
        self.cv.notify_all();
    }

    fn is_stopped(&self) -> bool {
        *self.stopped.lock().expect("stop latch poisoned")
    }

    /// Sleeps up to `timeout`; returns `true` when stopped.
    fn wait(&self, timeout: Duration) -> bool {
        let guard = self.stopped.lock().expect("stop latch poisoned");
        let (guard, _) = self
            .cv
            .wait_timeout_while(guard, timeout, |stopped| !*stopped)
            .expect("stop latch poisoned");
        *guard
    }
}

/// Background health prober: pings every non-ejected replica each
/// interval. Probe successes re-admit half-open replicas; probe failures
/// feed the same ejection counter as serve-path failures, so a replica
/// that dies while idle is ejected before traffic ever hits it.
fn prober_loop(backend: &RouterBackend, stop: &Stop, interval: Duration) {
    loop {
        let now = Instant::now();
        for replica in backend.pool().replicas() {
            if stop.is_stopped() {
                return;
            }
            if !replica.is_available(now) {
                continue; // still inside its ejection window
            }
            let pinged = replica
                .checkout(backend.pool().client_config())
                .and_then(|mut client| client.ping().map(|_| client));
            match pinged {
                Ok(client) => {
                    replica.record_success(backend.pool().health_config());
                    replica.checkin(client);
                }
                Err(_) => {
                    replica.record_failure(backend.pool().health_config());
                }
            }
        }
        if stop.wait(interval) {
            return;
        }
    }
}

/// Namespace for starting routers (see [`QbsRouter::start`]).
pub struct QbsRouter;

impl QbsRouter {
    /// Binds `config.addr` and starts routing — returns immediately with
    /// a handle owning the reactor, the gather workers, and the prober.
    pub fn start(config: RouterConfig) -> std::io::Result<RouterHandle> {
        if config.replicas.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "a router needs at least one --replica",
            ));
        }
        let pool = ReplicaPool::new(config.replicas.clone(), config.client, config.health);
        let backend = Arc::new(RouterBackend::new(pool, &config));
        let mut server_config = ServerConfig::bind(config.addr.clone())
            .workers(config.workers)
            .admission(config.admission);
        if let Some(addr) = &config.metrics_addr {
            server_config = server_config.metrics_addr(addr.clone());
        }
        if let Some(threshold) = config.slow_query {
            server_config = server_config.slow_query(threshold);
        }
        let server = QbsServer::start_with_backend(
            Arc::clone(&backend) as Arc<dyn ServeBackend>,
            server_config,
        )?;
        let stop = Arc::new(Stop::new());
        let prober = {
            let backend = Arc::clone(&backend);
            let stop = Arc::clone(&stop);
            let interval = config.probe_interval;
            std::thread::Builder::new()
                .name("qbs-prober".to_string())
                .spawn(move || prober_loop(&backend, &stop, interval))
                .expect("spawn prober thread")
        };
        Ok(RouterHandle {
            server,
            backend,
            stop,
            prober: Some(prober),
        })
    }
}

/// A running router: owns the reactor/worker threads (via the inner
/// [`ServerHandle`]) and the prober; joins them all on
/// [`RouterHandle::shutdown`] or drop.
#[derive(Debug)]
pub struct RouterHandle {
    server: ServerHandle,
    backend: Arc<RouterBackend>,
    stop: Arc<Stop>,
    prober: Option<JoinHandle<()>>,
}

impl RouterHandle {
    /// The address the router actually bound (resolves port 0).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.server.local_addr()
    }

    /// The address of the HTTP `/metrics` listener, when configured.
    pub fn metrics_addr(&self) -> Option<std::net::SocketAddr> {
        self.server.metrics_addr()
    }

    /// The shutdown latch — share it with a signal handler; triggering
    /// it initiates the same graceful drain as a `Shutdown` frame.
    pub fn signal(&self) -> Arc<ShutdownSignal> {
        self.server.signal()
    }

    /// The scatter/gather backend (pool access for tests and tools).
    pub fn backend(&self) -> &Arc<RouterBackend> {
        &self.backend
    }

    /// The routed stats snapshot — the same value a `Stats` frame
    /// returns, including the per-replica poll.
    pub fn stats(&self) -> ServerStats {
        self.server.stats()
    }

    /// The router-level counters without polling any replica.
    pub fn router_stats(&self) -> RouterStats {
        self.backend.router_stats()
    }

    /// Stops the prober, drains in-flight routed batches, joins every
    /// thread, and returns once the router is fully torn down.
    pub fn shutdown(&mut self) {
        self.stop.trigger();
        if let Some(prober) = self.prober.take() {
            let _ = prober.join();
        }
        self.server.shutdown();
    }

    /// Blocks until the shutdown latch flips (a `Shutdown` frame arrived
    /// or the signal was triggered elsewhere), then tears down.
    pub fn wait(mut self) {
        let signal = self.server.signal();
        while !signal.is_shutdown() {
            std::thread::sleep(WAIT_POLL);
        }
        self.shutdown();
    }
}

impl Drop for RouterHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}
