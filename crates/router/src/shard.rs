//! The routing table: a vertex-range shard map over replica groups.
//!
//! Today every deployment is **one full-replication group** — every
//! replica serves the whole index, and every request may go anywhere.
//! The map still exists as first-class data so that the partitioned
//! follow-up (splitting the vertex space across groups, each group
//! replicating its shard) is a *data* change: the scatter path already
//! asks the map which group owns a request's source vertex, and a
//! multi-group map just starts returning different answers. Nothing in
//! the balancing, retry, or health machinery assumes a single group.

/// One replica group: the replicas (as indices into the pool) serving
/// the vertex range starting at [`ShardGroup::start`] and ending where
/// the next group begins (the last group runs to the end of the vertex
/// space).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardGroup {
    /// First vertex ID this group owns.
    pub start: u32,
    /// Pool indices of the replicas serving this range.
    pub replicas: Vec<usize>,
}

/// The full routing table: groups sorted by [`ShardGroup::start`], the
/// first always starting at vertex 0 so every vertex has an owner.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardMap {
    groups: Vec<ShardGroup>,
}

impl ShardMap {
    /// The current deployment shape: one group owning the whole vertex
    /// space, replicated on every replica.
    pub fn full_replication(replicas: usize) -> ShardMap {
        ShardMap {
            groups: vec![ShardGroup {
                start: 0,
                replicas: (0..replicas).collect(),
            }],
        }
    }

    /// Builds a map from pre-sorted groups. The first group must start
    /// at 0 (every vertex needs an owner) and starts must strictly
    /// increase; returns `None` otherwise.
    pub fn from_groups(groups: Vec<ShardGroup>) -> Option<ShardMap> {
        if groups.first().is_none_or(|g| g.start != 0) {
            return None;
        }
        if groups.windows(2).any(|w| w[0].start >= w[1].start) {
            return None;
        }
        if groups.iter().any(|g| g.replicas.is_empty()) {
            return None;
        }
        Some(ShardMap { groups })
    }

    /// Whether this is the single full-replication group — the only
    /// shape the scatter path currently splits *within*; a partitioned
    /// map would partition the batch *across* groups first.
    pub fn is_fully_replicated(&self) -> bool {
        self.groups.len() == 1
    }

    /// The groups, sorted by start vertex.
    pub fn groups(&self) -> &[ShardGroup] {
        &self.groups
    }

    /// The group owning `vertex` (binary search over the range starts).
    pub fn group_for(&self, vertex: u32) -> &ShardGroup {
        let idx = match self.groups.binary_search_by_key(&vertex, |g| g.start) {
            Ok(i) => i,
            Err(i) => i - 1, // i >= 1: group 0 starts at 0
        };
        &self.groups[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_replication_owns_everything() {
        let map = ShardMap::full_replication(3);
        assert!(map.is_fully_replicated());
        assert_eq!(map.group_for(0).replicas, vec![0, 1, 2]);
        assert_eq!(map.group_for(u32::MAX).replicas, vec![0, 1, 2]);
    }

    #[test]
    fn partitioned_map_routes_by_range() {
        let map = ShardMap::from_groups(vec![
            ShardGroup {
                start: 0,
                replicas: vec![0, 1],
            },
            ShardGroup {
                start: 1000,
                replicas: vec![2],
            },
        ])
        .expect("valid map");
        assert!(!map.is_fully_replicated());
        assert_eq!(map.group_for(999).replicas, vec![0, 1]);
        assert_eq!(map.group_for(1000).replicas, vec![2]);
        assert_eq!(map.group_for(5000).replicas, vec![2]);
    }

    #[test]
    fn invalid_maps_are_rejected() {
        assert!(ShardMap::from_groups(vec![]).is_none());
        assert!(ShardMap::from_groups(vec![ShardGroup {
            start: 5,
            replicas: vec![0],
        }])
        .is_none());
        assert!(ShardMap::from_groups(vec![
            ShardGroup {
                start: 0,
                replicas: vec![0],
            },
            ShardGroup {
                start: 0,
                replicas: vec![1],
            },
        ])
        .is_none());
        assert!(ShardMap::from_groups(vec![ShardGroup {
            start: 0,
            replicas: vec![],
        }])
        .is_none());
    }
}
