//! Router integration tests: routed answers must be bit-identical to
//! local `Qbs::submit`, a replica dying mid-workload must lose no
//! accepted request (sub-batches re-route), and the all-replicas-down
//! regime must return typed per-slot errors — never a hang.

use std::net::TcpListener;
use std::sync::Arc;
use std::time::{Duration, Instant};

use qbs_core::serialize::{self, IndexFormat, MapMode};
use qbs_core::{Qbs, QbsConfig, QbsIndex, QueryRequest, RequestError};
use qbs_gen::catalog::{Catalog, DatasetId, Scale};
use qbs_router::{HealthConfig, QbsRouter, RouterConfig, RouterHandle};
use qbs_server::{ClientConfig, QbsClient, QbsServer, ServerConfig, ServerHandle};

/// Builds the shared test index (a tiny Douban stand-in), saves it as a
/// v2 file, and returns its path.
fn index_file(tag: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("qbs_router_failover_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let graph = Catalog::paper_table1()
        .get(DatasetId::Douban)
        .expect("catalog")
        .generate(Scale::Tiny);
    let index = QbsIndex::try_build(graph, QbsConfig::with_landmark_count(8)).expect("build");
    let path = dir.join("index.qbs2");
    serialize::save_to_file_with(&index, &path, IndexFormat::Binary).expect("save");
    path
}

/// Starts one replica: its own mmap session over the shared index file.
fn start_replica(path: &std::path::Path) -> ServerHandle {
    let qbs = Qbs::open(path, MapMode::Mmap).expect("open mmap");
    let qbs = Arc::new(qbs.with_threads(2).expect("threads"));
    QbsServer::start(qbs, ServerConfig::default().workers(2)).expect("start replica")
}

/// Starts a router over `replicas` with test-friendly knobs: small
/// sub-batches so every batch actually scatters, fast probes, fast
/// ejection, and a short dial bound so a dead replica costs little.
fn start_router(replicas: Vec<String>) -> RouterHandle {
    QbsRouter::start(
        RouterConfig::bind("127.0.0.1:0")
            .replicas(replicas)
            .workers(4)
            .min_split(4)
            .probe_interval(Duration::from_millis(100))
            .client(
                ClientConfig::default()
                    .connect_timeout(Duration::from_millis(250))
                    .io_timeout(Duration::from_secs(10)),
            )
            .health(HealthConfig {
                eject_after: 2,
                backoff_initial: Duration::from_millis(200),
                backoff_max: Duration::from_secs(2),
            }),
    )
    .expect("start router")
}

/// A mixed Distance/PathGraph/Sketch workload with one poisoned pair
/// spliced into the middle.
fn mixed_requests(num_vertices: u32, salt: u32) -> Vec<QueryRequest> {
    let mut requests: Vec<QueryRequest> = (0..40u32)
        .map(|i| {
            let u = (i * 7 + salt) % num_vertices;
            let v = (i * 13 + 3 * salt + 1) % num_vertices;
            match i % 4 {
                0 => QueryRequest::distance(u, v),
                1 => QueryRequest::path_graph(u, v),
                2 => QueryRequest::path_graph(u, v).with_stats(),
                _ => QueryRequest::sketch(u, v),
            }
        })
        .collect();
    requests.insert(requests.len() / 2, QueryRequest::distance(num_vertices, 0));
    requests
}

/// An `addr:port` that refuses connections (bound once, then released).
fn dead_addr() -> String {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    drop(listener);
    addr
}

#[test]
fn routed_answers_are_bit_identical_and_stats_aggregate() {
    let path = index_file("identical");
    let replicas: Vec<ServerHandle> = (0..3).map(|_| start_replica(&path)).collect();
    let router = start_router(
        replicas
            .iter()
            .map(|r| r.local_addr().to_string())
            .collect(),
    );
    let local = Qbs::open(&path, MapMode::Mmap).expect("local reference");
    let num_vertices = qbs_core::IndexStore::num_vertices(&local) as u32;

    let mut client =
        QbsClient::connect_retry(&router.local_addr().to_string(), Duration::from_secs(10))
            .expect("connect");
    // Two passes per salt: the second hits the replicas' warm answer
    // caches — cached answers must still merge bit-identically.
    for salt in 0..4u32 {
        let requests = mixed_requests(num_vertices, salt);
        for pass in 0..2 {
            let reply = client.submit(&requests).expect("submit");
            let outcomes = reply.outcomes().expect("unloaded router never sheds");
            let expected = local.submit(&requests);
            assert_eq!(
                outcomes,
                &expected[..],
                "salt {salt} pass {pass}: routed answers diverged from local submit"
            );
            assert_eq!(
                outcomes.iter().filter(|o| o.is_error()).count(),
                1,
                "exactly the poisoned pair fails"
            );
        }
    }

    // The routed Stats frame aggregates: a router section with every
    // replica, and merged engine counters covering all routed requests.
    let stats = client.stats().expect("stats");
    let router_stats = stats.router.as_ref().expect("router section present");
    assert_eq!(router_stats.replicas.len(), 3);
    assert_eq!(router_stats.batches_routed, 8);
    assert!(
        router_stats.subbatches > router_stats.batches_routed,
        "41-request batches with min_split=4 must scatter across replicas"
    );
    assert_eq!(router_stats.unavailable_slots, 0);
    assert!(router_stats.replicas.iter().all(|r| r.healthy));
    assert!(
        router_stats.replicas.iter().all(|r| r.requests > 0),
        "least-in-flight balancing must spread sub-batches over every replica: {:?}",
        router_stats
            .replicas
            .iter()
            .map(|r| r.requests)
            .collect::<Vec<_>>()
    );
    assert_eq!(
        stats.engine.requests,
        8 * 41,
        "merged engine counters cover every routed request"
    );

    drop(client);
    drop(router);
    drop(replicas);
}

#[test]
fn killing_a_replica_mid_workload_loses_no_accepted_request() {
    let path = index_file("kill_one");
    let mut replicas: Vec<ServerHandle> = (0..3).map(|_| start_replica(&path)).collect();
    let router = start_router(
        replicas
            .iter()
            .map(|r| r.local_addr().to_string())
            .collect(),
    );
    let local = Qbs::open(&path, MapMode::Mmap).expect("local reference");
    let num_vertices = qbs_core::IndexStore::num_vertices(&local) as u32;
    let addr = router.local_addr().to_string();

    let (tx, rx) = std::sync::mpsc::channel::<()>();
    let worker = std::thread::spawn(move || {
        let mut client = QbsClient::connect_retry(&addr, Duration::from_secs(10)).expect("connect");
        for round in 0..24u32 {
            if round == 6 {
                tx.send(()).expect("signal the kill");
            }
            let requests = mixed_requests(num_vertices, round);
            let reply = client.submit(&requests).expect("submit");
            let outcomes = reply
                .outcomes()
                .expect("router sheds nothing in this test")
                .to_vec();
            let expected = local.submit(&requests);
            assert_eq!(
                outcomes,
                &expected[..],
                "round {round}: an accepted request was lost or answered wrongly \
                 while a replica died"
            );
        }
    });

    // Kill replica 0 while the workload is in flight. Its in-progress
    // sub-batches either flush during the drain or fail over; every
    // accepted batch must still come back bit-identical.
    rx.recv().expect("worker reached the kill round");
    let mut victim = replicas.remove(0);
    victim.shutdown();
    drop(victim);

    worker.join().expect("workload thread");

    // The router noticed: the dead replica took failures (and is ejected
    // or at least demerited) while the survivors answered the re-routes.
    let router_stats = router.router_stats();
    assert_eq!(router_stats.unavailable_slots, 0, "no slot went unanswered");
    drop(router);
    drop(replicas);
}

#[test]
fn all_replicas_down_returns_typed_errors_not_a_hang() {
    let router = start_router(vec![dead_addr(), dead_addr()]);
    let mut client =
        QbsClient::connect_retry(&router.local_addr().to_string(), Duration::from_secs(10))
            .expect("the router itself accepts even with every replica down");

    let requests: Vec<QueryRequest> = (0..12u32)
        .map(|i| QueryRequest::distance(i, i + 1))
        .collect();
    let start = Instant::now();
    let reply = client.submit(&requests).expect("a reply, not a hang");
    let elapsed = start.elapsed();
    assert!(
        elapsed < Duration::from_secs(20),
        "all-down batch took {elapsed:?}; dials must be bounded"
    );
    let outcomes = reply.outcomes().expect("typed per-slot errors, not Busy");
    assert_eq!(outcomes.len(), requests.len());
    for outcome in outcomes {
        match outcome.error() {
            Some(RequestError::Unavailable { reason }) => {
                assert!(
                    reason.contains("unreachable"),
                    "reason should say why: {reason}"
                );
            }
            other => panic!("expected Unavailable for every slot, got {other:?}"),
        }
    }
    let router_stats = router.router_stats();
    assert_eq!(router_stats.unavailable_slots, 12);
    drop(router);
}

#[test]
fn routed_metrics_merge_replica_histograms_and_serve_http() {
    let path = index_file("metrics");
    let replicas: Vec<ServerHandle> = (0..2).map(|_| start_replica(&path)).collect();
    let router = QbsRouter::start(
        RouterConfig::bind("127.0.0.1:0")
            .replicas(
                replicas
                    .iter()
                    .map(|r| r.local_addr().to_string())
                    .collect(),
            )
            .workers(4)
            .min_split(4)
            .metrics_addr("127.0.0.1:0")
            .slow_query(Duration::ZERO),
    )
    .expect("start router");
    let metrics_addr = router.metrics_addr().expect("metrics listener bound");
    let local = Qbs::open(&path, MapMode::Mmap).expect("local reference");
    let num_vertices = qbs_core::IndexStore::num_vertices(&local) as u32;

    let mut client =
        QbsClient::connect_retry(&router.local_addr().to_string(), Duration::from_secs(10))
            .expect("connect");
    let pinned = qbs_core::TraceId(0xFEED_FACE);
    client.set_trace(pinned);
    for salt in 0..2u32 {
        let reply = client
            .submit(&mixed_requests(num_vertices, salt))
            .expect("submit");
        assert!(reply.outcomes().is_some());
    }

    // The Metrics frame merges the replica histograms into the router's
    // own: the per-mode execute families can only come from replicas
    // (the router records only the batch slot), so their presence proves
    // the merge happened.
    let snapshot = client.metrics().expect("routed metrics");
    let stages = qbs_core::Stage::ALL.len();
    let batch_slot = 3;
    let routed = snapshot.family(batch_slot, qbs_core::Stage::Execute).count;
    assert!(
        routed >= 2,
        "router-tier execute family empty: {snapshot:?}"
    );
    let replica_side: u64 = (0..batch_slot)
        .map(|slot| snapshot.family(slot, qbs_core::Stage::Execute).count)
        .sum();
    assert!(
        replica_side > 0,
        "replica per-mode stage histograms missing from the merge \
         (hists: {}, stages: {stages})",
        snapshot.hists.len()
    );
    assert!(
        snapshot.slow_queries >= 2,
        "zero threshold marks every routed batch slow, got {}",
        snapshot.slow_queries
    );

    // The router's HTTP endpoint renders both the routing counters and
    // the merged per-stage histograms.
    use std::io::{Read, Write};
    let mut http = std::net::TcpStream::connect(metrics_addr).expect("http connect");
    http.set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    http.write_all(b"GET /metrics HTTP/1.1\r\nHost: qbs\r\nConnection: close\r\n\r\n")
        .expect("request");
    let mut body = String::new();
    http.read_to_string(&mut body).expect("response");
    assert!(body.starts_with("HTTP/1.1 200 OK"), "bad status: {body}");
    for family in [
        "qbs_router_batches_routed_total",
        "qbs_replica_failures_total",
        "qbs_stage_seconds_bucket",
        "qbs_slow_queries_total",
    ] {
        assert!(body.contains(family), "missing family {family} in:\n{body}");
    }

    drop(client);
    drop(router);
    drop(replicas);
}
