//! Admission control: the server's first-class load-shedding layer.
//!
//! A serving process in front of a microsecond-latency index dies from
//! *acceptance*, not from work: unbounded in-flight requests blow the
//! memory budget, unbounded connections starve the handler pool, and an
//! unbounded accept backlog turns overload into client-side hangs. This
//! module makes all three bounds explicit and **sheds instead of
//! queueing**: work beyond a bound is answered with a typed
//! [`BusyReason`] (carried in the protocol's `Busy` frame) the moment it
//! arrives, so a client always gets a fast, actionable answer — never a
//! stalled socket.
//!
//! Three independent bounds ([`AdmissionConfig`]):
//!
//! * **in-flight requests** — a counting semaphore over the *requests*
//!   (not batches) currently executing; a batch atomically acquires one
//!   permit per request or is shed whole ([`BusyReason::Overloaded`]);
//! * **batch size** — a per-connection cap on requests per batch frame
//!   ([`BusyReason::BatchTooLarge`]); oversized batches are refused
//!   before touching the semaphore;
//! * **connections** — a cap on concurrently served connections
//!   ([`BusyReason::TooManyConnections`]); the listener completes the
//!   handshake, sends the `Busy` frame and closes, so a shed client sees
//!   a typed refusal instead of an accept queue that never drains.
//!
//! All counters are exported as [`AdmissionStats`] through the `Stats`
//! protocol frame.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use qbs_core::wire::{Wire, WireError, WireReader};

/// Bounds enforced by [`Admission`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Maximum requests executing concurrently across all connections.
    pub max_inflight: usize,
    /// Maximum requests in one batch frame.
    pub max_batch: usize,
    /// Maximum concurrently served connections. The reactor parks idle
    /// connections for the cost of a pollfd entry, so this defaults high;
    /// it exists to keep a connection flood below the process's fd limit,
    /// shedding the excess with a typed
    /// [`BusyReason::TooManyConnections`].
    pub max_connections: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            max_inflight: 4_096,
            max_batch: 4_096,
            max_connections: 1_024,
        }
    }
}

/// Why a batch or connection was shed — the payload of the protocol's
/// `Busy` response frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BusyReason {
    /// Admitting the batch would exceed the in-flight request bound.
    Overloaded {
        /// The configured in-flight bound.
        limit: u64,
        /// Requests already in flight when the batch arrived.
        inflight: u64,
        /// Size of the refused batch.
        got: u64,
    },
    /// The batch exceeds the per-batch request cap.
    BatchTooLarge {
        /// The configured cap.
        limit: u64,
        /// Size of the refused batch.
        got: u64,
    },
    /// The server is at its connection bound.
    TooManyConnections {
        /// The configured bound.
        limit: u64,
    },
    /// The listener found no idle connection handler to hand this
    /// connection to. Pre-v2 servers (one thread per connection) shed
    /// with this reason when their handler pool saturated; the reactor
    /// parks idle connections instead and never emits it. The variant is
    /// kept so clients can still decode the frame from old servers.
    NoIdleHandler {
        /// The configured handler-pool size (the actionable knob).
        handlers: u64,
    },
}

impl std::fmt::Display for BusyReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BusyReason::Overloaded {
                limit,
                inflight,
                got,
            } => write!(
                f,
                "overloaded: {got} requests would exceed the in-flight bound \
                 ({inflight}/{limit} already executing)"
            ),
            BusyReason::BatchTooLarge { limit, got } => {
                write!(f, "batch of {got} requests exceeds the {limit}-request cap")
            }
            BusyReason::TooManyConnections { limit } => {
                write!(
                    f,
                    "connection bound reached ({limit} concurrent connections)"
                )
            }
            BusyReason::NoIdleHandler { handlers } => {
                write!(
                    f,
                    "no idle connection handler ({handlers}-handler pool saturated)"
                )
            }
        }
    }
}

impl Wire for BusyReason {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            BusyReason::Overloaded {
                limit,
                inflight,
                got,
            } => {
                out.push(0);
                out.extend_from_slice(&limit.to_le_bytes());
                out.extend_from_slice(&inflight.to_le_bytes());
                out.extend_from_slice(&got.to_le_bytes());
            }
            BusyReason::BatchTooLarge { limit, got } => {
                out.push(1);
                out.extend_from_slice(&limit.to_le_bytes());
                out.extend_from_slice(&got.to_le_bytes());
            }
            BusyReason::TooManyConnections { limit } => {
                out.push(2);
                out.extend_from_slice(&limit.to_le_bytes());
            }
            BusyReason::NoIdleHandler { handlers } => {
                out.push(3);
                out.extend_from_slice(&handlers.to_le_bytes());
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8("busy reason")? {
            0 => Ok(BusyReason::Overloaded {
                limit: r.u64("inflight limit")?,
                inflight: r.u64("inflight now")?,
                got: r.u64("batch size")?,
            }),
            1 => Ok(BusyReason::BatchTooLarge {
                limit: r.u64("batch limit")?,
                got: r.u64("batch size")?,
            }),
            2 => Ok(BusyReason::TooManyConnections {
                limit: r.u64("connection limit")?,
            }),
            3 => Ok(BusyReason::NoIdleHandler {
                handlers: r.u64("handler pool size")?,
            }),
            tag => Err(WireError::BadTag {
                what: "busy reason",
                tag: tag as u64,
            }),
        }
    }
}

/// Counter snapshot of an [`Admission`] instance (part of the `Stats`
/// protocol frame).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Batches admitted past all bounds.
    pub admitted_batches: u64,
    /// Requests inside admitted batches.
    pub admitted_requests: u64,
    /// Batches shed by the in-flight bound.
    pub shed_overload: u64,
    /// Batches shed by the per-batch cap.
    pub shed_batch_size: u64,
    /// Connections shed before service — by the connection bound or by
    /// the saturated accept path ([`BusyReason::NoIdleHandler`]).
    pub shed_connections: u64,
    /// Requests executing right now.
    pub inflight: u64,
    /// Connections served right now.
    pub connections: u64,
}

impl AdmissionStats {
    /// Percentage of offered batches that were shed (overload + size
    /// cap), 0.0 when nothing has been offered yet.
    pub fn shed_rate(&self) -> f64 {
        let shed = self.shed_overload + self.shed_batch_size;
        let offered = self.admitted_batches + shed;
        if offered == 0 {
            0.0
        } else {
            shed as f64 * 100.0 / offered as f64
        }
    }
}

impl std::fmt::Display for AdmissionStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "admission: {} batches / {} requests admitted, shed {} overload + {} oversized + \
             {} connections ({:.1}% shed, {} in flight, {} connected)",
            self.admitted_batches,
            self.admitted_requests,
            self.shed_overload,
            self.shed_batch_size,
            self.shed_connections,
            self.shed_rate(),
            self.inflight,
            self.connections
        )
    }
}

impl Wire for AdmissionStats {
    fn encode(&self, out: &mut Vec<u8>) {
        for v in [
            self.admitted_batches,
            self.admitted_requests,
            self.shed_overload,
            self.shed_batch_size,
            self.shed_connections,
            self.inflight,
            self.connections,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(AdmissionStats {
            admitted_batches: r.u64("admitted batches")?,
            admitted_requests: r.u64("admitted requests")?,
            shed_overload: r.u64("shed overload")?,
            shed_batch_size: r.u64("shed batch size")?,
            shed_connections: r.u64("shed connections")?,
            inflight: r.u64("inflight")?,
            connections: r.u64("connections")?,
        })
    }
}

/// Live admission counters protected by one mutex (permits are only
/// touched at batch/connection boundaries, never per query).
#[derive(Debug, Default)]
struct Counts {
    inflight: usize,
    connections: usize,
}

/// The admission controller shared by the listener and every handler.
#[derive(Debug)]
pub struct Admission {
    config: AdmissionConfig,
    counts: Mutex<Counts>,
    /// Signalled whenever permits are released, so [`Admission::drain`]
    /// can wait for the in-flight count to reach zero.
    drained: Condvar,
    admitted_batches: AtomicU64,
    admitted_requests: AtomicU64,
    shed_overload: AtomicU64,
    shed_batch_size: AtomicU64,
    shed_connections: AtomicU64,
}

impl Admission {
    /// Creates a controller over the given bounds.
    pub fn new(config: AdmissionConfig) -> Self {
        Admission {
            config,
            counts: Mutex::new(Counts::default()),
            drained: Condvar::new(),
            admitted_batches: AtomicU64::new(0),
            admitted_requests: AtomicU64::new(0),
            shed_overload: AtomicU64::new(0),
            shed_batch_size: AtomicU64::new(0),
            shed_connections: AtomicU64::new(0),
        }
    }

    /// The configured bounds.
    pub fn config(&self) -> &AdmissionConfig {
        &self.config
    }

    /// The bound-checking core of batch admission; acquires the permits
    /// without constructing a guard.
    fn try_admit_batch(&self, requests: usize) -> Result<(), BusyReason> {
        if requests > self.config.max_batch {
            self.shed_batch_size.fetch_add(1, Ordering::Relaxed);
            return Err(BusyReason::BatchTooLarge {
                limit: self.config.max_batch as u64,
                got: requests as u64,
            });
        }
        let mut counts = self.counts.lock().expect("admission counts poisoned");
        if counts.inflight + requests > self.config.max_inflight {
            let inflight = counts.inflight as u64;
            drop(counts);
            self.shed_overload.fetch_add(1, Ordering::Relaxed);
            return Err(BusyReason::Overloaded {
                limit: self.config.max_inflight as u64,
                inflight,
                got: requests as u64,
            });
        }
        counts.inflight += requests;
        drop(counts);
        self.admitted_batches.fetch_add(1, Ordering::Relaxed);
        self.admitted_requests
            .fetch_add(requests as u64, Ordering::Relaxed);
        Ok(())
    }

    /// The bound-checking core of connection admission.
    fn try_admit_connection(&self) -> Result<(), BusyReason> {
        let mut counts = self.counts.lock().expect("admission counts poisoned");
        if counts.connections >= self.config.max_connections {
            drop(counts);
            self.shed_connections.fetch_add(1, Ordering::Relaxed);
            return Err(BusyReason::TooManyConnections {
                limit: self.config.max_connections as u64,
            });
        }
        counts.connections += 1;
        Ok(())
    }

    /// Tries to admit a batch of `requests` requests: the per-batch cap is
    /// checked first, then one in-flight permit per request is acquired
    /// atomically. Sheds (with the precise [`BusyReason`]) instead of
    /// blocking. The returned guard releases the permits on drop.
    pub fn admit_batch(&self, requests: usize) -> Result<InflightGuard<'_>, BusyReason> {
        self.try_admit_batch(requests)?;
        Ok(InflightGuard {
            admission: self,
            requests,
        })
    }

    /// [`Admission::admit_batch`] with an owning guard: the permit can
    /// travel with the decoded batch from the reactor thread to whichever
    /// worker executes it, releasing when the response is handed back.
    pub fn admit_batch_owned(
        self: &Arc<Self>,
        requests: usize,
    ) -> Result<OwnedInflightGuard, BusyReason> {
        self.try_admit_batch(requests)?;
        Ok(OwnedInflightGuard {
            admission: Arc::clone(self),
            requests,
        })
    }

    /// Tries to claim a connection slot; sheds at the bound.
    pub fn admit_connection(&self) -> Result<ConnectionGuard<'_>, BusyReason> {
        self.try_admit_connection()?;
        Ok(ConnectionGuard { admission: self })
    }

    /// [`Admission::admit_connection`] with an owning guard, stored
    /// inside the reactor's per-connection state.
    pub fn admit_connection_owned(self: &Arc<Self>) -> Result<OwnedConnectionGuard, BusyReason> {
        self.try_admit_connection()?;
        Ok(OwnedConnectionGuard {
            admission: Arc::clone(self),
        })
    }

    /// Releases a batch's in-flight permits (the guards' drop path).
    fn release_batch(&self, requests: usize) {
        let mut counts = self.counts.lock().expect("admission counts poisoned");
        counts.inflight -= requests;
        if counts.inflight == 0 {
            self.drained.notify_all();
        }
    }

    /// Releases a connection slot (the guards' drop path).
    fn release_connection(&self) {
        let mut counts = self.counts.lock().expect("admission counts poisoned");
        counts.connections -= 1;
    }

    /// Counts a connection shed *before* slot accounting — the listener's
    /// bounded accept backlog refusing an arrival outright.
    pub fn record_backlog_shed(&self) {
        self.shed_connections.fetch_add(1, Ordering::Relaxed);
    }

    /// Blocks until no requests are in flight — the shutdown drain.
    pub fn drain(&self) {
        let counts = self.counts.lock().expect("admission counts poisoned");
        let _unused = self
            .drained
            .wait_while(counts, |c| c.inflight > 0)
            .expect("admission counts poisoned");
    }

    /// A consistent snapshot of the admission counters.
    pub fn stats(&self) -> AdmissionStats {
        let (inflight, connections) = {
            let counts = self.counts.lock().expect("admission counts poisoned");
            (counts.inflight as u64, counts.connections as u64)
        };
        AdmissionStats {
            admitted_batches: self.admitted_batches.load(Ordering::Relaxed),
            admitted_requests: self.admitted_requests.load(Ordering::Relaxed),
            shed_overload: self.shed_overload.load(Ordering::Relaxed),
            shed_batch_size: self.shed_batch_size.load(Ordering::Relaxed),
            shed_connections: self.shed_connections.load(Ordering::Relaxed),
            inflight,
            connections,
        }
    }
}

/// RAII permit over a batch's in-flight requests.
#[derive(Debug)]
pub struct InflightGuard<'a> {
    admission: &'a Admission,
    requests: usize,
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.admission.release_batch(self.requests);
    }
}

/// Owning variant of [`InflightGuard`]: holds the controller by `Arc` so
/// the permit can cross threads with the work it covers.
#[derive(Debug)]
pub struct OwnedInflightGuard {
    admission: Arc<Admission>,
    requests: usize,
}

impl Drop for OwnedInflightGuard {
    fn drop(&mut self) {
        self.admission.release_batch(self.requests);
    }
}

/// RAII permit over one served connection.
#[derive(Debug)]
pub struct ConnectionGuard<'a> {
    admission: &'a Admission,
}

impl Drop for ConnectionGuard<'_> {
    fn drop(&mut self) {
        self.admission.release_connection();
    }
}

/// Owning variant of [`ConnectionGuard`], stored in per-connection state
/// that outlives any one stack frame.
#[derive(Debug)]
pub struct OwnedConnectionGuard {
    admission: Arc<Admission>,
}

impl Drop for OwnedConnectionGuard {
    fn drop(&mut self) {
        self.admission.release_connection();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbs_core::wire::{from_bytes, to_bytes};

    fn config(max_inflight: usize, max_batch: usize, max_connections: usize) -> AdmissionConfig {
        AdmissionConfig {
            max_inflight,
            max_batch,
            max_connections,
        }
    }

    #[test]
    fn batches_acquire_one_permit_per_request() {
        let admission = Admission::new(config(10, 8, 4));
        let a = admission.admit_batch(6).expect("fits");
        assert_eq!(admission.stats().inflight, 6);
        let err = admission.admit_batch(5).expect_err("would exceed 10");
        assert_eq!(
            err,
            BusyReason::Overloaded {
                limit: 10,
                inflight: 6,
                got: 5
            }
        );
        let b = admission.admit_batch(4).expect("exactly fills the bound");
        assert_eq!(admission.stats().inflight, 10);
        drop(a);
        assert_eq!(admission.stats().inflight, 4);
        drop(b);
        let stats = admission.stats();
        assert_eq!(stats.inflight, 0);
        assert_eq!(stats.admitted_batches, 2);
        assert_eq!(stats.admitted_requests, 10);
        assert_eq!(stats.shed_overload, 1);
    }

    #[test]
    fn oversized_batches_are_refused_before_the_semaphore() {
        let admission = Admission::new(config(100, 8, 4));
        let err = admission.admit_batch(9).expect_err("over the cap");
        assert_eq!(err, BusyReason::BatchTooLarge { limit: 8, got: 9 });
        let stats = admission.stats();
        assert_eq!(stats.shed_batch_size, 1);
        assert_eq!(stats.inflight, 0, "no permits were consumed");
        // Empty batches are always admissible.
        let _g = admission.admit_batch(0).expect("empty batch");
    }

    #[test]
    fn connection_slots_are_bounded() {
        let admission = Admission::new(config(10, 8, 2));
        let a = admission.admit_connection().expect("slot 1");
        let _b = admission.admit_connection().expect("slot 2");
        let err = admission.admit_connection().expect_err("bound reached");
        assert_eq!(err, BusyReason::TooManyConnections { limit: 2 });
        drop(a);
        let _c = admission.admit_connection().expect("slot freed");
        assert_eq!(admission.stats().shed_connections, 1);
        assert_eq!(admission.stats().connections, 2);
    }

    #[test]
    fn owned_guards_release_across_threads() {
        let admission = Arc::new(Admission::new(config(10, 8, 2)));
        let batch = admission.admit_batch_owned(4).expect("admit");
        let conn = admission.admit_connection_owned().expect("slot");
        assert_eq!(admission.stats().inflight, 4);
        assert_eq!(admission.stats().connections, 1);
        let handle = std::thread::spawn(move || {
            drop(batch);
            drop(conn);
        });
        handle.join().unwrap();
        assert_eq!(admission.stats().inflight, 0);
        assert_eq!(admission.stats().connections, 0);
        // Owned admission hits the same bounds as the borrowed form.
        let _a = admission.admit_connection_owned().expect("slot 1");
        let _b = admission.admit_connection_owned().expect("slot 2");
        assert!(admission.admit_connection_owned().is_err());
        assert!(admission.admit_batch_owned(9).is_err());
    }

    #[test]
    fn drain_waits_for_inflight_to_empty() {
        let admission = Admission::new(config(10, 8, 4));
        let guard = admission.admit_batch(3).expect("admit");
        std::thread::scope(|scope| {
            scope.spawn(|| {
                std::thread::sleep(std::time::Duration::from_millis(50));
                drop(guard);
            });
            admission.drain();
            assert_eq!(admission.stats().inflight, 0);
        });
        // Draining an idle controller returns immediately.
        admission.drain();
    }

    #[test]
    fn busy_reasons_and_stats_roundtrip_the_wire() {
        for reason in [
            BusyReason::Overloaded {
                limit: 64,
                inflight: 60,
                got: 8,
            },
            BusyReason::BatchTooLarge { limit: 16, got: 40 },
            BusyReason::TooManyConnections { limit: 2 },
            BusyReason::NoIdleHandler { handlers: 4 },
        ] {
            assert_eq!(
                from_bytes::<BusyReason>(&to_bytes(&reason)).unwrap(),
                reason
            );
            assert!(!reason.to_string().is_empty());
        }
        assert!(from_bytes::<BusyReason>(&[7]).is_err());

        let stats = AdmissionStats {
            admitted_batches: 1,
            admitted_requests: 2,
            shed_overload: 3,
            shed_batch_size: 4,
            shed_connections: 5,
            inflight: 6,
            connections: 7,
        };
        assert_eq!(
            from_bytes::<AdmissionStats>(&to_bytes(&stats)).unwrap(),
            stats
        );
        assert!(stats.to_string().contains("shed 3 overload"));
    }
}
