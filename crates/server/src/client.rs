//! The blocking client library for the framed TCP protocol.
//!
//! A [`QbsClient`] holds one connection: `connect` performs the
//! magic+version handshake, after which [`QbsClient::submit`] ships
//! [`QueryRequest`] batches and returns the server's per-request
//! [`QueryOutcome`]s — bit-identical to what a local
//! [`qbs_core::Qbs::submit`] over the same index would produce. Admission
//! shedding is a first-class reply ([`BatchReply::Busy`]), not an error:
//! the connection stays healthy and the caller decides whether to retry.
//!
//! ```no_run
//! use qbs_core::QueryRequest;
//! use qbs_server::{BatchReply, QbsClient};
//!
//! let mut client = QbsClient::connect("127.0.0.1:7411").unwrap();
//! match client.submit(&[QueryRequest::distance(6, 11)]).unwrap() {
//!     BatchReply::Outcomes(outcomes) => println!("{:?}", outcomes[0].distance()),
//!     BatchReply::Busy(reason) => eprintln!("shed: {reason}"),
//! }
//! ```

use std::net::TcpStream;
use std::time::{Duration, Instant};

use qbs_core::{QueryOutcome, QueryRequest};

use crate::admission::BusyReason;
use crate::protocol::{self, ProtocolError, RequestFrame, ResponseFrame, ServerStats};

/// Reply to one submitted batch.
#[derive(Clone, Debug, PartialEq)]
pub enum BatchReply {
    /// Per-request outcomes, in input order.
    Outcomes(Vec<QueryOutcome>),
    /// The server shed the batch; retry later on the same connection.
    Busy(BusyReason),
}

impl BatchReply {
    /// The outcomes, when the batch was admitted.
    pub fn outcomes(&self) -> Option<&[QueryOutcome]> {
        match self {
            BatchReply::Outcomes(outcomes) => Some(outcomes),
            BatchReply::Busy(_) => None,
        }
    }

    /// The shed reason, when the batch was refused.
    pub fn busy(&self) -> Option<&BusyReason> {
        match self {
            BatchReply::Busy(reason) => Some(reason),
            BatchReply::Outcomes(_) => None,
        }
    }
}

/// A blocking connection to a `qbs-server`.
#[derive(Debug)]
pub struct QbsClient {
    stream: TcpStream,
    /// Remembered dial target for [`QbsClient::reconnect`].
    addr: String,
}

/// Default per-operation socket timeout.
const IO_TIMEOUT: Duration = Duration::from_secs(30);

impl QbsClient {
    /// Connects and performs the protocol handshake.
    pub fn connect(addr: &str) -> Result<QbsClient, ProtocolError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(Some(IO_TIMEOUT))?;
        stream.set_write_timeout(Some(IO_TIMEOUT))?;
        let mut client = QbsClient {
            stream,
            addr: addr.to_string(),
        };
        protocol::write_preamble(&mut client.stream)?;
        protocol::read_preamble(&mut client.stream)?;
        Ok(client)
    }

    /// Connects with bounded retries, ping-verifying the connection is
    /// actually being served. This is how well-behaved clients absorb the
    /// retryable refusals — a server still starting, or a connection shed
    /// while a handler tears down its previous session — instead of
    /// treating them as hard failures.
    pub fn connect_retry(addr: &str, timeout: Duration) -> Result<QbsClient, ProtocolError> {
        let deadline = Instant::now() + timeout;
        loop {
            let attempt = QbsClient::connect(addr).and_then(|mut client| {
                client.ping()?;
                Ok(client)
            });
            match attempt {
                Ok(client) => return Ok(client),
                Err(err) if Instant::now() >= deadline => return Err(err),
                Err(_) => std::thread::sleep(Duration::from_millis(20)),
            }
        }
    }

    /// Drops the current connection and dials the same address again —
    /// the recovery path after an [`ProtocolError::Io`] (server restart,
    /// idle timeout, network blip).
    pub fn reconnect(&mut self) -> Result<(), ProtocolError> {
        *self = QbsClient::connect(&self.addr)?;
        Ok(())
    }

    /// The address this client dials.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Submits a batch of typed requests; outcomes arrive in input order
    /// and are bit-identical to a local `Qbs::submit` over the same index.
    ///
    /// [`BatchReply::Busy`] is reserved for *batch-level* sheds, where the
    /// connection genuinely stays usable; a `Busy` frame carrying a
    /// connection-level reason (the connection was refused at accept time
    /// and this is its queued farewell) surfaces as
    /// [`ProtocolError::Shed`] instead — retrying on this socket would
    /// only hit a closed connection.
    pub fn submit(&mut self, requests: &[QueryRequest]) -> Result<BatchReply, ProtocolError> {
        protocol::write_frame(&mut self.stream, &protocol::encode_batch_body(requests))?;
        match self.read()? {
            ResponseFrame::Batch(outcomes) => Ok(BatchReply::Outcomes(outcomes)),
            ResponseFrame::Busy(
                reason @ (BusyReason::TooManyConnections { .. } | BusyReason::NoIdleHandler { .. }),
            ) => Err(ProtocolError::Shed(reason)),
            ResponseFrame::Busy(reason) => Ok(BatchReply::Busy(reason)),
            other => Err(unexpected(other)),
        }
    }

    /// Fetches the server's serving + admission counter snapshot.
    pub fn stats(&mut self) -> Result<ServerStats, ProtocolError> {
        protocol::write_request(&mut self.stream, &RequestFrame::Stats)?;
        match self.read()? {
            ResponseFrame::Stats(stats) => Ok(stats),
            ResponseFrame::Busy(reason) => Err(busy_error(reason)),
            other => Err(unexpected(other)),
        }
    }

    /// Round-trip liveness probe; returns the measured latency.
    pub fn ping(&mut self) -> Result<Duration, ProtocolError> {
        let start = Instant::now();
        protocol::write_request(&mut self.stream, &RequestFrame::Ping)?;
        match self.read()? {
            ResponseFrame::Pong => Ok(start.elapsed()),
            ResponseFrame::Busy(reason) => Err(busy_error(reason)),
            other => Err(unexpected(other)),
        }
    }

    /// Asks the server to drain in-flight batches and exit; returns once
    /// the drain has been acknowledged.
    pub fn shutdown_server(&mut self) -> Result<(), ProtocolError> {
        protocol::write_request(&mut self.stream, &RequestFrame::Shutdown)?;
        match self.read()? {
            ResponseFrame::ShutdownAck => Ok(()),
            ResponseFrame::Busy(reason) => Err(busy_error(reason)),
            other => Err(unexpected(other)),
        }
    }

    fn read(&mut self) -> Result<ResponseFrame, ProtocolError> {
        match protocol::read_response(&mut self.stream)? {
            ResponseFrame::Error(fault) => Err(ProtocolError::Remote(fault)),
            frame => Ok(frame),
        }
    }
}

fn unexpected(frame: ResponseFrame) -> ProtocolError {
    ProtocolError::UnexpectedFrame(match frame {
        ResponseFrame::Batch(_) => "batch",
        ResponseFrame::Stats(_) => "stats",
        ResponseFrame::Pong => "pong",
        ResponseFrame::ShutdownAck => "shutdown-ack",
        ResponseFrame::Busy(_) => "busy",
        ResponseFrame::Error(_) => "error",
    })
}

/// A `Busy` reply to a control frame (stats/ping/shutdown). The protocol
/// never sheds control frames, so this only occurs when the *connection*
/// was refused at accept time and the queued `Busy` is the first frame
/// read back.
fn busy_error(reason: BusyReason) -> ProtocolError {
    ProtocolError::Shed(reason)
}
