//! The blocking client library for the framed TCP protocol, with a
//! pipelined v2 surface.
//!
//! A [`QbsClient`] holds one connection: `connect` performs the
//! magic+version handshake (negotiating the protocol version; see
//! [`ClientConfig::force_v1`]), after which batches travel two ways:
//!
//! * **One-shot**: [`QbsClient::submit`] ships a batch and blocks for its
//!   reply — exactly the old API, now implemented as `send` + `recv`.
//! * **Pipelined**: [`QbsClient::send`] ships a batch and returns a
//!   [`Ticket`] immediately; any number of batches can be in flight, and
//!   [`QbsClient::recv`] blocks for one ticket's reply. Under protocol v2
//!   the server executes them concurrently and answers in *completion*
//!   order — the client re-pairs replies to tickets by request ID, so
//!   tickets may be redeemed in any order. Under v1 the wire is strictly
//!   FIFO and the client pairs replies positionally; pipelining still
//!   works, it just cannot overtake.
//!
//! Outcomes are bit-identical to what a local [`qbs_core::Qbs::submit`]
//! over the same index would produce, whatever the version or ordering.
//! Admission shedding is a first-class reply ([`BatchReply::Busy`]), not
//! an error: the connection stays healthy and the caller decides whether
//! to retry.
//!
//! ```no_run
//! use qbs_core::QueryRequest;
//! use qbs_server::{BatchReply, QbsClient};
//!
//! let mut client = QbsClient::connect("127.0.0.1:7411").unwrap();
//! // Pipelined: both batches are on the wire before either reply.
//! let a = client.send(&[QueryRequest::distance(6, 11)]).unwrap();
//! let b = client.send(&[QueryRequest::path_graph(2, 9)]).unwrap();
//! match client.recv(b).unwrap() {
//!     BatchReply::Outcomes(outcomes) => println!("{:?}", outcomes[0].distance()),
//!     BatchReply::Busy(reason) => eprintln!("shed: {reason}"),
//! }
//! let _ = client.recv(a).unwrap();
//! ```

use std::collections::{HashMap, VecDeque};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use qbs_core::wire::RequestId;
use qbs_core::{MetricsSnapshot, QueryOutcome, QueryRequest, TraceId};

use crate::admission::BusyReason;
use crate::protocol::{self, ProtocolError, RequestFrame, ResponseFrame, ServerStats};

/// Reply to one submitted batch.
#[derive(Clone, Debug, PartialEq)]
pub enum BatchReply {
    /// Per-request outcomes, in input order.
    Outcomes(Vec<QueryOutcome>),
    /// The server shed the batch; retry later on the same connection.
    Busy(BusyReason),
}

impl BatchReply {
    /// The outcomes, when the batch was admitted.
    pub fn outcomes(&self) -> Option<&[QueryOutcome]> {
        match self {
            BatchReply::Outcomes(outcomes) => Some(outcomes),
            BatchReply::Busy(_) => None,
        }
    }

    /// The shed reason, when the batch was refused.
    pub fn busy(&self) -> Option<&BusyReason> {
        match self {
            BatchReply::Busy(reason) => Some(reason),
            BatchReply::Outcomes(_) => None,
        }
    }
}

/// Claim on one in-flight batch, issued by [`QbsClient::send`] and
/// redeemed (once) by [`QbsClient::recv`]. Tickets from the same
/// connection may be redeemed in any order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Ticket(RequestId);

impl Ticket {
    /// The wire-level request ID this ticket rides on (v2 connections;
    /// under v1 the ID is client-side bookkeeping only).
    pub fn request_id(&self) -> RequestId {
        self.0
    }
}

impl std::fmt::Display for Ticket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ticket {}", self.0)
    }
}

/// Configuration of a [`QbsClient`] — built fluently and shared by the
/// CLI, tests and benches:
///
/// ```
/// use std::time::Duration;
/// use qbs_server::ClientConfig;
/// let config = ClientConfig::default()
///     .connect_timeout(Duration::from_millis(250))
///     .force_v1(true);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct ClientConfig {
    /// Socket read/write timeout for established-connection operations.
    pub io_timeout: Duration,
    /// Bound on **one** dial + handshake attempt. This is what keeps a
    /// single unresponsive accept (a server mid-start, a half-open
    /// listener) from eating the whole retry budget of
    /// [`QbsClient::connect_retry`].
    pub connect_timeout: Duration,
    /// Announce protocol v1 in the handshake instead of the newest
    /// version. The server then serves this connection byte-identically
    /// to a pre-v2 build — the escape hatch for wire-level debugging and
    /// differential tests.
    pub force_v1: bool,
    /// Initial pause between [`QbsClient::connect_retry`] attempts. Each
    /// failed attempt doubles the pause (up to
    /// [`ClientConfig::retry_backoff_max`]), and the actual sleep is
    /// *jittered* — drawn uniformly from `[pause/2, pause]` — so a fleet
    /// of clients reconnecting to a restarted replica spreads out instead
    /// of hammering the listener in lockstep.
    pub retry_backoff: Duration,
    /// Cap on the exponential backoff growth.
    pub retry_backoff_max: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            io_timeout: Duration::from_secs(30),
            connect_timeout: Duration::from_secs(5),
            force_v1: false,
            retry_backoff: Duration::from_millis(10),
            retry_backoff_max: Duration::from_millis(500),
        }
    }
}

impl ClientConfig {
    /// Sets the per-operation socket timeout.
    pub fn io_timeout(mut self, io_timeout: Duration) -> ClientConfig {
        self.io_timeout = io_timeout;
        self
    }

    /// Sets the per-attempt dial + handshake bound.
    pub fn connect_timeout(mut self, connect_timeout: Duration) -> ClientConfig {
        self.connect_timeout = connect_timeout;
        self
    }

    /// Forces the handshake to announce protocol v1.
    pub fn force_v1(mut self, force_v1: bool) -> ClientConfig {
        self.force_v1 = force_v1;
        self
    }

    /// Sets the initial retry pause (doubled per failed attempt).
    pub fn retry_backoff(mut self, retry_backoff: Duration) -> ClientConfig {
        self.retry_backoff = retry_backoff;
        self
    }

    /// Sets the backoff growth cap.
    pub fn retry_backoff_max(mut self, retry_backoff_max: Duration) -> ClientConfig {
        self.retry_backoff_max = retry_backoff_max;
        self
    }
}

/// One step of the retry pacing: the jittered sleep for the current
/// backoff (uniform in `[backoff/2, backoff]` — equal jitter keeps a
/// minimum pacing while desynchronising a reconnect storm) and the next,
/// doubled-and-capped backoff.
fn backoff_step(backoff: Duration, cap: Duration, rng: &mut u64) -> (Duration, Duration) {
    let micros = backoff.as_micros().min(u128::from(u64::MAX)) as u64;
    let half = micros / 2;
    let sleep = Duration::from_micros(half + xorshift(rng) % (micros - half + 1));
    let next = backoff.saturating_mul(2).min(cap.max(backoff));
    (sleep, next)
}

/// `xorshift64` — a tiny full-period PRNG; statistical quality is beside
/// the point here, distinct streams per process are all jitter needs.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Seeds the jitter stream from the wall clock and the process ID, so
/// simultaneously restarted clients still draw different sequences.
/// Never zero (the xorshift fixed point).
fn jitter_seed() -> u64 {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| u64::from(d.subsec_nanos()))
        .unwrap_or(0);
    let pid = u64::from(std::process::id());
    ((nanos << 20) ^ (pid << 8) ^ nanos) | 1
}

/// A blocking connection to a `qbs-server`.
#[derive(Debug)]
pub struct QbsClient {
    stream: TcpStream,
    /// Remembered dial target for [`QbsClient::reconnect`].
    addr: String,
    config: ClientConfig,
    /// Version negotiated in the handshake.
    version: u16,
    /// Last issued request ID (tickets and control frames share the
    /// counter; 0 is reserved for connection-scoped frames).
    last_id: RequestId,
    /// IDs of requests written and not yet answered, in wire order —
    /// under v1 this is how replies are paired; under v2 it guards
    /// against redeeming a ticket that was never issued.
    outstanding: VecDeque<RequestId>,
    /// Replies that arrived while waiting for a different ID.
    stash: HashMap<RequestId, ResponseFrame>,
    /// PRNG state for per-send trace IDs (v3 connections).
    trace_rng: u64,
    /// Caller-pinned trace ID; when set, every frame carries it verbatim
    /// instead of a generated one.
    pinned_trace: Option<TraceId>,
    /// Trace ID stamped on the most recent frame written.
    last_trace: TraceId,
}

impl QbsClient {
    /// Connects with [`ClientConfig::default`] and performs the protocol
    /// handshake.
    pub fn connect(addr: &str) -> Result<QbsClient, ProtocolError> {
        QbsClient::connect_with(addr, ClientConfig::default())
    }

    /// Connects under an explicit configuration. The dial *and* the
    /// handshake are bounded by [`ClientConfig::connect_timeout`]; once
    /// the preambles have been exchanged the socket switches to
    /// [`ClientConfig::io_timeout`].
    pub fn connect_with(addr: &str, config: ClientConfig) -> Result<QbsClient, ProtocolError> {
        let target = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| -> ProtocolError {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    format!("{addr}: no usable socket address"),
                )
                .into()
            })?;
        let stream = TcpStream::connect_timeout(&target, config.connect_timeout)?;
        stream.set_nodelay(true).ok();
        // The handshake runs under the connect budget: a server that
        // accepted but never answers costs one attempt, not io_timeout.
        stream.set_read_timeout(Some(config.connect_timeout))?;
        stream.set_write_timeout(Some(config.connect_timeout))?;
        let mut client = QbsClient {
            stream,
            addr: addr.to_string(),
            config,
            version: 0,
            last_id: RequestId::CONNECTION,
            outstanding: VecDeque::new(),
            stash: HashMap::new(),
            trace_rng: jitter_seed(),
            pinned_trace: None,
            last_trace: TraceId::NONE,
        };
        let announced = if config.force_v1 {
            protocol::MIN_PROTOCOL_VERSION
        } else {
            protocol::PROTOCOL_VERSION
        };
        protocol::write_preamble_version(&mut client.stream, announced)?;
        let theirs = protocol::read_preamble(&mut client.stream)?;
        // The server replies with the negotiated version (≤ what we
        // announced); a newer server's announcement still lands on the
        // version we asked for.
        client.version = theirs.min(announced);
        client.stream.set_read_timeout(Some(config.io_timeout))?;
        client.stream.set_write_timeout(Some(config.io_timeout))?;
        Ok(client)
    }

    /// Connects with bounded retries, ping-verifying the connection is
    /// actually being served. This is how well-behaved clients absorb the
    /// retryable refusals — a server still starting, or a connection shed
    /// under a flood — instead of treating them as hard failures. Each
    /// individual attempt is additionally bounded by
    /// [`ClientConfig::connect_timeout`], so one hung accept or stalled
    /// handshake cannot consume the whole budget.
    pub fn connect_retry(addr: &str, timeout: Duration) -> Result<QbsClient, ProtocolError> {
        QbsClient::connect_retry_with(addr, timeout, ClientConfig::default())
    }

    /// [`QbsClient::connect_retry`] under an explicit configuration.
    /// Failed attempts are paced by jittered exponential backoff
    /// ([`ClientConfig::retry_backoff`] doubling up to
    /// [`ClientConfig::retry_backoff_max`], each sleep drawn uniformly
    /// from the upper half of the current pause) — a fixed cadence would
    /// synchronise every client of a restarted replica into one thundering
    /// herd, re-shedding each other on the exact same beat.
    pub fn connect_retry_with(
        addr: &str,
        timeout: Duration,
        config: ClientConfig,
    ) -> Result<QbsClient, ProtocolError> {
        let deadline = Instant::now() + timeout;
        let mut rng = jitter_seed();
        let mut backoff = config.retry_backoff.max(Duration::from_millis(1));
        loop {
            // Clip the attempt budget to what remains of the total, so
            // the last attempt cannot overshoot the caller's deadline.
            let remaining = deadline.saturating_duration_since(Instant::now());
            let attempt_config = config.connect_timeout(
                config
                    .connect_timeout
                    .min(remaining.max(Duration::from_millis(1))),
            );
            let attempt = QbsClient::connect_with(addr, attempt_config).and_then(|mut client| {
                client.ping()?;
                // The handshake ran under the clipped budget; remember
                // the caller's configuration for reconnects.
                client.config = config;
                Ok(client)
            });
            match attempt {
                Ok(client) => return Ok(client),
                Err(err) if Instant::now() >= deadline => return Err(err),
                Err(_) => {
                    let (sleep, next) = backoff_step(backoff, config.retry_backoff_max, &mut rng);
                    backoff = next;
                    // Never sleep past the caller's deadline; the final
                    // clipped attempt above then fails fast and returns.
                    std::thread::sleep(
                        sleep.min(deadline.saturating_duration_since(Instant::now())),
                    );
                }
            }
        }
    }

    /// Drops the current connection and dials the same address again —
    /// the recovery path after an [`ProtocolError::Io`] (server restart,
    /// idle timeout, network blip). In-flight tickets die with the old
    /// connection.
    pub fn reconnect(&mut self) -> Result<(), ProtocolError> {
        let pinned = self.pinned_trace;
        *self = QbsClient::connect_with(&self.addr, self.config)?;
        self.pinned_trace = pinned;
        Ok(())
    }

    /// The address this client dials.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// The protocol version negotiated with the server (1, 2 or 3).
    pub fn protocol_version(&self) -> u16 {
        self.version
    }

    /// Pins the trace ID stamped on every subsequent frame (v3
    /// connections), instead of a fresh one per send — how the CLI's
    /// `--trace-id` makes a request findable in a replica's slow-query
    /// log. Pass [`TraceId::NONE`] via a fresh client to return to
    /// generated traces.
    pub fn set_trace(&mut self, trace: TraceId) {
        self.pinned_trace = Some(trace);
    }

    /// The trace ID carried by the most recently written frame
    /// ([`TraceId::NONE`] before any send, and always on pre-v3
    /// connections, whose envelope has no trace field).
    pub fn last_trace(&self) -> TraceId {
        self.last_trace
    }

    /// Stamps the trace for the next frame: the pinned ID when set,
    /// otherwise a freshly generated one (never [`TraceId::NONE`], which
    /// is reserved for untraced traffic).
    fn next_trace(&mut self) -> TraceId {
        let trace = match self.pinned_trace {
            Some(pinned) => pinned,
            None => TraceId(xorshift(&mut self.trace_rng) | 1),
        };
        self.last_trace = trace;
        trace
    }

    /// Number of sent-but-unredeemed tickets (and unanswered control
    /// frames) on the wire.
    pub fn in_flight(&self) -> usize {
        self.outstanding.len() + self.stash.len()
    }

    /// Ships a batch without waiting for its reply and returns the
    /// [`Ticket`] to redeem with [`QbsClient::recv`]. Any number of
    /// batches can be pipelined; under v2 the server executes them
    /// concurrently and the replies may complete out of order.
    pub fn send(&mut self, requests: &[QueryRequest]) -> Result<Ticket, ProtocolError> {
        let trace = if self.version >= 3 {
            self.next_trace()
        } else {
            TraceId::NONE
        };
        self.send_traced(requests, trace)
    }

    /// [`QbsClient::send`] under an explicit trace ID — how a router
    /// propagates the client's trace onto every scattered sub-batch, so
    /// one slow request is findable in the replica's slow-query log too.
    /// On pre-v3 connections the trace has nowhere to ride and is
    /// silently dropped.
    pub fn send_traced(
        &mut self,
        requests: &[QueryRequest],
        trace: TraceId,
    ) -> Result<Ticket, ProtocolError> {
        let id = self.issue_id();
        let body = protocol::encode_batch_body(requests);
        if self.version >= 3 {
            self.last_trace = trace;
            protocol::write_frame(
                &mut self.stream,
                &protocol::encode_envelope_v3(id, trace, &body),
            )?;
        } else if self.version >= 2 {
            protocol::write_frame(&mut self.stream, &protocol::encode_envelope(id, &body))?;
        } else {
            protocol::write_frame(&mut self.stream, &body)?;
        }
        self.outstanding.push_back(id);
        Ok(Ticket(id))
    }

    /// Blocks until `ticket`'s reply is available and returns it. Replies
    /// for *other* tickets read along the way are stashed and returned by
    /// their own `recv` calls — redeem in any order.
    ///
    /// [`BatchReply::Busy`] is reserved for *batch-level* sheds, where the
    /// connection genuinely stays usable; a `Busy` frame carrying a
    /// connection-level reason (the connection was refused at accept time
    /// and this is its queued farewell) surfaces as
    /// [`ProtocolError::Shed`] instead — retrying on this socket would
    /// only hit a closed connection.
    pub fn recv(&mut self, ticket: Ticket) -> Result<BatchReply, ProtocolError> {
        match self.await_reply(ticket.0)? {
            ResponseFrame::Batch(outcomes) => Ok(BatchReply::Outcomes(outcomes)),
            ResponseFrame::Busy(
                reason @ (BusyReason::TooManyConnections { .. } | BusyReason::NoIdleHandler { .. }),
            ) => Err(ProtocolError::Shed(reason)),
            ResponseFrame::Busy(reason) => Ok(BatchReply::Busy(reason)),
            other => Err(unexpected(other)),
        }
    }

    /// Submits a batch and blocks for its reply (`send` + `recv`);
    /// outcomes arrive in input order and are bit-identical to a local
    /// `Qbs::submit` over the same index.
    pub fn submit(&mut self, requests: &[QueryRequest]) -> Result<BatchReply, ProtocolError> {
        let ticket = self.send(requests)?;
        self.recv(ticket)
    }

    /// Fetches the server's serving + admission counter snapshot.
    pub fn stats(&mut self) -> Result<ServerStats, ProtocolError> {
        match self.control(&RequestFrame::Stats)? {
            ResponseFrame::Stats(stats) => Ok(stats),
            ResponseFrame::Busy(reason) => Err(busy_error(reason)),
            other => Err(unexpected(other)),
        }
    }

    /// Fetches the server's latency-histogram snapshot — per-stage,
    /// per-mode timing distributions plus the slow-query count. A router
    /// answers with the bucket-wise merge across itself and its replicas.
    /// Requires a v3 connection; older servers answer with a fault.
    pub fn metrics(&mut self) -> Result<MetricsSnapshot, ProtocolError> {
        match self.control(&RequestFrame::Metrics)? {
            ResponseFrame::Metrics(snapshot) => Ok(snapshot),
            ResponseFrame::Busy(reason) => Err(busy_error(reason)),
            other => Err(unexpected(other)),
        }
    }

    /// Round-trip liveness probe; returns the measured latency.
    pub fn ping(&mut self) -> Result<Duration, ProtocolError> {
        let start = Instant::now();
        match self.control(&RequestFrame::Ping)? {
            ResponseFrame::Pong => Ok(start.elapsed()),
            ResponseFrame::Busy(reason) => Err(busy_error(reason)),
            other => Err(unexpected(other)),
        }
    }

    /// Asks the server to drain in-flight batches and exit; returns once
    /// the drain has been acknowledged.
    pub fn shutdown_server(&mut self) -> Result<(), ProtocolError> {
        match self.control(&RequestFrame::Shutdown)? {
            ResponseFrame::ShutdownAck => Ok(()),
            ResponseFrame::Busy(reason) => Err(busy_error(reason)),
            other => Err(unexpected(other)),
        }
    }

    /// Allocates the next request ID (skipping the reserved 0).
    fn issue_id(&mut self) -> RequestId {
        self.last_id = self.last_id.next();
        self.last_id
    }

    /// Writes a control frame and blocks for its own reply, stashing any
    /// pipelined batch replies that arrive first.
    fn control(&mut self, frame: &RequestFrame) -> Result<ResponseFrame, ProtocolError> {
        let id = self.issue_id();
        if self.version >= 3 {
            let trace = self.next_trace();
            protocol::write_request_v3(&mut self.stream, id, trace, frame)?;
        } else if self.version >= 2 {
            protocol::write_request_v2(&mut self.stream, id, frame)?;
        } else {
            protocol::write_request(&mut self.stream, frame)?;
        }
        self.outstanding.push_back(id);
        self.await_reply(id)
    }

    /// Blocks until the reply for `want` is available, reading (and
    /// stashing) replies for other outstanding requests along the way.
    fn await_reply(&mut self, want: RequestId) -> Result<ResponseFrame, ProtocolError> {
        loop {
            if let Some(frame) = self.stash.remove(&want) {
                return self.resolve(frame);
            }
            if !self.outstanding.contains(&want) {
                return Err(ProtocolError::UnknownTicket(want));
            }
            let (id, frame) = if self.version >= 3 {
                let (id, _trace, frame) = protocol::read_response_v3(&mut self.stream)?;
                if id.is_connection_scoped() {
                    return self.resolve(frame);
                }
                (id, frame)
            } else if self.version >= 2 {
                let (id, frame) = protocol::read_response_v2(&mut self.stream)?;
                if id.is_connection_scoped() {
                    // Connection-scoped frames (faults, accept-time Busy)
                    // concern the socket, not one request: fail now.
                    return self.resolve(frame);
                }
                (id, frame)
            } else {
                // v1 wire is strictly FIFO: this frame answers the oldest
                // outstanding request.
                let frame = protocol::read_response(&mut self.stream)?;
                match self.outstanding.front().copied() {
                    Some(oldest) => (oldest, frame),
                    // Nothing outstanding: connection-scoped (a farewell
                    // Busy/fault from the server).
                    None => return self.resolve(frame),
                }
            };
            self.outstanding.retain(|&o| o != id);
            if id == want {
                return self.resolve(frame);
            }
            self.stash.insert(id, frame);
        }
    }

    /// Final per-frame triage shared by all read paths.
    fn resolve(&mut self, frame: ResponseFrame) -> Result<ResponseFrame, ProtocolError> {
        match frame {
            ResponseFrame::Error(fault) => Err(ProtocolError::Remote(fault)),
            frame => Ok(frame),
        }
    }
}

fn unexpected(frame: ResponseFrame) -> ProtocolError {
    ProtocolError::UnexpectedFrame(match frame {
        ResponseFrame::Batch(_) => "batch",
        ResponseFrame::Stats(_) => "stats",
        ResponseFrame::Metrics(_) => "metrics",
        ResponseFrame::Pong => "pong",
        ResponseFrame::ShutdownAck => "shutdown-ack",
        ResponseFrame::Busy(_) => "busy",
        ResponseFrame::Error(_) => "error",
    })
}

/// A `Busy` reply to a control frame (stats/ping/shutdown). The protocol
/// never sheds control frames, so this only occurs when the *connection*
/// was refused at accept time and the queued `Busy` is the first frame
/// read back.
fn busy_error(reason: BusyReason) -> ProtocolError {
    ProtocolError::Shed(reason)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_to_the_cap_and_jitters_in_the_upper_half() {
        let cap = Duration::from_millis(80);
        let mut rng = jitter_seed();
        let mut backoff = Duration::from_millis(10);
        let mut seen = Vec::new();
        for _ in 0..8 {
            let (sleep, next) = backoff_step(backoff, cap, &mut rng);
            assert!(
                sleep >= backoff / 2 && sleep <= backoff,
                "jittered sleep {sleep:?} outside [{:?}, {backoff:?}]",
                backoff / 2
            );
            seen.push(backoff);
            backoff = next;
        }
        assert_eq!(
            &seen[..4],
            &[
                Duration::from_millis(10),
                Duration::from_millis(20),
                Duration::from_millis(40),
                Duration::from_millis(80)
            ]
        );
        assert!(seen[4..].iter().all(|&b| b == cap), "backoff exceeded cap");
    }

    #[test]
    fn backoff_cap_below_initial_never_shrinks_the_pause() {
        // A cap accidentally configured below the initial pause must not
        // collapse the cadence to zero.
        let mut rng = 42;
        let (_, next) = backoff_step(
            Duration::from_millis(50),
            Duration::from_millis(10),
            &mut rng,
        );
        assert_eq!(next, Duration::from_millis(50));
    }

    #[test]
    fn jitter_streams_diverge() {
        let mut a = 1u64;
        let mut b = 2u64;
        let draws_a: Vec<u64> = (0..4).map(|_| xorshift(&mut a)).collect();
        let draws_b: Vec<u64> = (0..4).map(|_| xorshift(&mut b)).collect();
        assert_ne!(draws_a, draws_b);
        assert_ne!(jitter_seed(), 0);
    }
}
