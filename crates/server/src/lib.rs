//! # qbs-server
//!
//! The network serving subsystem: a long-running framed TCP server and the
//! matching blocking client over one shared [`qbs_core::Qbs`] session —
//! the layer that turns microsecond index lookups (Wang et al., SIGMOD
//! 2021) into a service many concurrent clients can hit.
//!
//! The crate is **std-only** (the build environment has no crates.io
//! access): framing is length-prefixed binary over `TcpStream`, the
//! server is a single `poll(2)` reactor thread plus a fixed worker pool,
//! and admission control is a counting semaphore — see the module docs:
//!
//! * [`protocol`] — magic + version handshake with **version
//!   negotiation** (v1: one frame per round trip; v2: request-ID
//!   envelopes for pipelining; v3: request-ID + trace-ID envelopes and
//!   the `Metrics` frame pair), length-prefixed frames, typed
//!   [`ProtocolError`]s (spec in `docs/protocol.md`);
//! * [`admission`] — first-class load shedding: in-flight request
//!   semaphore, per-batch cap, connection bound, typed `Busy`;
//! * [`server`] — one reactor thread multiplexing every connection over
//!   [`poll`], plus a fixed worker pool over an `Arc<Qbs>` (thousands of
//!   idle connections park on one thread; N connections share one mmap'd
//!   index, workspace pool and answer cache), graceful `Shutdown`-frame /
//!   SIGINT teardown, an optional Prometheus-style HTTP `/metrics`
//!   listener, and a trace-stamped slow-query log (see
//!   `docs/observability.md`);
//! * [`client`] — blocking [`QbsClient`]: connect/reconnect, one-shot
//!   `submit` plus the pipelined `send`/`recv` [`Ticket`] surface, stats,
//!   ping, shutdown;
//! * [`poll`] — the `poll(2)` + wake-pipe shim the reactor stands on;
//! * [`signal`] — the SIGINT/SIGTERM latch the CLI wires into the serve
//!   loop.
//!
//! Server answers are **bit-identical** to local [`qbs_core::Qbs::submit`]
//! outcomes — whether the connection negotiated v1 or v2, and whatever
//! order pipelined replies complete in. The loopback differential tests
//! and the CI `serve-smoke` step enforce it.
//!
//! ```
//! use std::sync::Arc;
//! use qbs_core::{Qbs, QbsConfig, QueryRequest};
//! use qbs_server::{BatchReply, QbsClient, QbsServer, ServerConfig};
//! use qbs_graph::fixtures::figure4_graph;
//!
//! let qbs = Arc::new(
//!     Qbs::build(figure4_graph(), QbsConfig::with_landmark_count(3)).unwrap(),
//! );
//! let mut server = QbsServer::start(Arc::clone(&qbs), ServerConfig::default()).unwrap();
//! let mut client = QbsClient::connect(&server.local_addr().to_string()).unwrap();
//! let reply = client.submit(&[QueryRequest::distance(6, 11)]).unwrap();
//! match reply {
//!     BatchReply::Outcomes(outcomes) => assert_eq!(outcomes[0].distance(), Some(5)),
//!     BatchReply::Busy(reason) => panic!("unloaded server shed a batch: {reason}"),
//! }
//! server.shutdown();
//! ```

// `unsafe` is denied crate-wide; the exceptions are the two tiny
// syscall shims (reviewed in isolation) that opt back in with a
// module-level `allow`, exactly the `qbs-core::mmap` pattern: the
// `signal(2)` latch and the `poll(2)`/`pipe(2)` reactor primitives.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod client;
pub mod poll;
pub mod protocol;
pub mod server;
pub mod signal;

pub use admission::{Admission, AdmissionConfig, AdmissionStats, BusyReason};
pub use client::{BatchReply, ClientConfig, QbsClient, Ticket};
pub use protocol::{
    ProtocolError, ServerStats, MAX_FRAME_LEN, MIN_PROTOCOL_VERSION, PROTOCOL_VERSION,
};
pub use server::{QbsServer, ServeBackend, ServerConfig, ServerHandle, ShutdownSignal};
