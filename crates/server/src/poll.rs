//! A minimal `poll(2)` + self-pipe shim for the reactor.
//!
//! The offline build environment has no `libc`/`mio` crates, so this
//! module binds `poll(2)`, `pipe(2)` and the raw fd `read`/`write`/`close`
//! directly via `extern "C"` on Unix targets — the same pattern as
//! `qbs_core::mmap` and [`crate::signal`]. The surface is deliberately
//! tiny: build a pollfd set, block until something is ready, and a
//! [`WakePipe`] that lets worker threads interrupt the blocked reactor.
//!
//! On non-Unix targets the shim degrades to a short-sleep emulation that
//! reports every descriptor ready: the reactor's reads and writes are all
//! non-blocking, so spurious readiness only costs a `WouldBlock` and a
//! re-park — correctness is preserved, efficiency is Unix-only.
#![allow(unsafe_code)]

use std::io;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};

/// Readable-data event bit (also set on EOF by the kernel).
pub const POLLIN: i16 = 0x1;
/// Writable-space event bit.
pub const POLLOUT: i16 = 0x4;
/// Error condition (revents only).
pub const POLLERR: i16 = 0x8;
/// Peer hung up (revents only).
pub const POLLHUP: i16 = 0x10;
/// Invalid descriptor (revents only).
pub const POLLNVAL: i16 = 0x20;

/// A raw descriptor as `poll(2)` sees it. Negative values are legal and
/// ignored by the kernel (POSIX), which is how the non-Unix [`WakePipe`]
/// placeholder rides through a uniform poll set.
pub type RawSocket = i32;

/// One entry of a `poll(2)` set. The layout matches the C `struct pollfd`
/// on every platform we bind (int + short + short).
#[repr(C)]
#[derive(Clone, Copy, Debug)]
pub struct PollFd {
    fd: RawSocket,
    events: i16,
    revents: i16,
}

impl PollFd {
    /// An entry watching `fd` for `events` (a bitmask of [`POLLIN`] /
    /// [`POLLOUT`]).
    pub fn new(fd: RawSocket, events: i16) -> PollFd {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// The watched descriptor.
    pub fn fd(&self) -> RawSocket {
        self.fd
    }

    /// Whether the descriptor has readable data, hit EOF, or errored —
    /// all states where a read will make progress (possibly `Ok(0)`).
    pub fn readable(&self) -> bool {
        self.revents & (POLLIN | POLLERR | POLLHUP | POLLNVAL) != 0
    }

    /// Whether a write can make progress (including failing fast on a
    /// reset connection).
    pub fn writable(&self) -> bool {
        self.revents & (POLLOUT | POLLERR | POLLHUP | POLLNVAL) != 0
    }
}

/// Blocks until at least one entry is ready or `timeout_ms` elapses.
/// Returns the number of ready entries (0 on timeout). `EINTR` is
/// reported as a zero-ready wakeup, so callers simply re-loop.
pub fn poll(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    imp::poll(fds, timeout_ms)
}

/// The raw descriptor of a listener, for a poll set.
pub fn listener_fd(listener: &TcpListener) -> RawSocket {
    imp::listener_fd(listener)
}

/// The raw descriptor of a stream, for a poll set.
pub fn stream_fd(stream: &TcpStream) -> RawSocket {
    imp::stream_fd(stream)
}

/// A self-pipe that lets any thread wake a reactor blocked in [`poll`].
///
/// The byte protocol keeps the pipe from ever filling (so [`WakePipe::wake`]
/// never blocks, even though the descriptors stay in blocking mode): a
/// waker writes one byte only when it flips the pending flag from false to
/// true, and the reactor clears the flag *before* consuming one byte. Every
/// written byte is therefore matched by a drain, and the pipe never holds
/// more than a couple of bytes.
#[derive(Debug)]
pub struct WakePipe {
    pending: AtomicBool,
    ends: imp::PipeEnds,
}

impl WakePipe {
    /// Opens the pipe. On non-Unix targets this is a flag-only stand-in
    /// whose [`WakePipe::poll_fd`] is ignored by the emulated poll.
    pub fn new() -> io::Result<WakePipe> {
        Ok(WakePipe {
            pending: AtomicBool::new(false),
            ends: imp::PipeEnds::new()?,
        })
    }

    /// The read end as a poll entry (watch it with [`POLLIN`]).
    pub fn poll_fd(&self) -> PollFd {
        PollFd::new(self.ends.read_fd(), POLLIN)
    }

    /// Wakes the reactor. Cheap when a wake is already pending (one
    /// atomic swap, no syscall); never blocks.
    pub fn wake(&self) {
        if !self.pending.swap(true, Ordering::SeqCst) {
            self.ends.write_byte();
        }
    }

    /// Consumes one pending wake after [`poll`] reported the read end
    /// readable. Clears the flag first so a wake racing the drain writes
    /// a fresh byte (and is observed by the next poll) instead of being
    /// lost.
    pub fn drain(&self) {
        self.pending.store(false, Ordering::SeqCst);
        self.ends.read_byte();
    }
}

#[cfg(unix)]
mod imp {
    use std::ffi::c_int;
    use std::io;
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    use super::{PollFd, RawSocket};

    // Raw bindings. `nfds_t` is declared as `usize`: it is `unsigned
    // long` on Linux and `unsigned int` on the BSDs/macOS, and every
    // realistic set size fits both; the count we pass is bounded by the
    // process fd limit. The buffer pointers are 1-byte locals.
    extern "C" {
        #[link_name = "poll"]
        fn sys_poll(fds: *mut PollFd, nfds: usize, timeout: c_int) -> c_int;
        fn pipe(fds: *mut c_int) -> c_int;
        fn read(fd: c_int, buf: *mut u8, count: usize) -> isize;
        fn write(fd: c_int, buf: *const u8, count: usize) -> isize;
        fn close(fd: c_int) -> c_int;
    }

    pub(super) fn poll(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
        // SAFETY: `PollFd` is `repr(C)` with the `struct pollfd` layout,
        // the pointer/length pair denotes exactly the caller's slice, and
        // poll(2) writes only within it (the `revents` fields).
        let ready = unsafe { sys_poll(fds.as_mut_ptr(), fds.len(), timeout_ms) };
        if ready >= 0 {
            return Ok(ready as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() == io::ErrorKind::Interrupted {
            // A signal landed mid-wait; report an empty wakeup and let
            // the caller re-loop (the CLI's SIGINT latch is checked there).
            return Ok(0);
        }
        Err(err)
    }

    pub(super) fn listener_fd(listener: &TcpListener) -> RawSocket {
        listener.as_raw_fd()
    }

    pub(super) fn stream_fd(stream: &TcpStream) -> RawSocket {
        stream.as_raw_fd()
    }

    /// The two ends of a `pipe(2)`, closed on drop.
    #[derive(Debug)]
    pub(super) struct PipeEnds {
        read_fd: c_int,
        write_fd: c_int,
    }

    impl PipeEnds {
        pub(super) fn new() -> io::Result<PipeEnds> {
            let mut fds = [0 as c_int; 2];
            // SAFETY: `fds` is a writable 2-element array, exactly what
            // pipe(2) fills.
            if unsafe { pipe(fds.as_mut_ptr()) } != 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(PipeEnds {
                read_fd: fds[0],
                write_fd: fds[1],
            })
        }

        pub(super) fn read_fd(&self) -> RawSocket {
            self.read_fd
        }

        pub(super) fn write_byte(&self) {
            let byte = 1u8;
            // SAFETY: writes one byte from a live local into an open pipe
            // end owned by `self`. The wake protocol bounds outstanding
            // bytes far below the pipe buffer, so this cannot block.
            let _ = unsafe { write(self.write_fd, &byte, 1) };
        }

        pub(super) fn read_byte(&self) {
            let mut byte = 0u8;
            // SAFETY: reads one byte into a live local from an open pipe
            // end owned by `self`; poll(2) reported it readable.
            let _ = unsafe { read(self.read_fd, &mut byte, 1) };
        }
    }

    impl Drop for PipeEnds {
        fn drop(&mut self) {
            // SAFETY: the fds came from a successful pipe(2) and are
            // closed exactly once.
            unsafe {
                close(self.read_fd);
                close(self.write_fd);
            }
        }
    }
}

#[cfg(not(unix))]
mod imp {
    use std::io;
    use std::net::{TcpListener, TcpStream};
    use std::time::Duration;

    use super::{RawSocket, POLLIN, POLLOUT};

    /// Emulated poll: sleep briefly, then claim every watched event is
    /// ready. Non-blocking I/O turns false positives into `WouldBlock`.
    pub(super) fn poll(fds: &mut [super::PollFd], timeout_ms: i32) -> io::Result<usize> {
        let cap = if timeout_ms < 0 { 1 } else { timeout_ms.min(1) };
        std::thread::sleep(Duration::from_millis(cap.max(0) as u64));
        let mut ready = 0;
        for fd in fds.iter_mut() {
            if fd.fd < 0 {
                fd.revents = 0;
                continue;
            }
            fd.revents = fd.events & (POLLIN | POLLOUT);
            ready += 1;
        }
        Ok(ready)
    }

    pub(super) fn listener_fd(_listener: &TcpListener) -> RawSocket {
        0
    }

    pub(super) fn stream_fd(_stream: &TcpStream) -> RawSocket {
        0
    }

    /// Flag-only stand-in: the emulated poll returns within ~1ms anyway,
    /// so a wake is observed without any descriptor to signal.
    #[derive(Debug)]
    pub(super) struct PipeEnds;

    impl PipeEnds {
        pub(super) fn new() -> io::Result<PipeEnds> {
            Ok(PipeEnds)
        }

        pub(super) fn read_fd(&self) -> RawSocket {
            -1
        }

        pub(super) fn write_byte(&self) {}

        pub(super) fn read_byte(&self) {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn poll_times_out_on_an_idle_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let stream = TcpStream::connect(addr).unwrap();
        let (_server_side, _) = listener.accept().unwrap();
        let mut fds = [PollFd::new(stream_fd(&stream), POLLIN)];
        // Nothing was sent: a bounded wait must return (ready or not —
        // the emulated fallback claims readiness, the real poll times
        // out), never hang.
        let _ = poll(&mut fds, 50).unwrap();
    }

    #[test]
    fn poll_reports_data_and_eof_as_readable() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        client.write_all(b"x").unwrap();
        client.flush().unwrap();
        let mut fds = [PollFd::new(stream_fd(&server_side), POLLIN)];
        let ready = poll(&mut fds, 2_000).unwrap();
        assert!(ready >= 1);
        assert!(fds[0].readable());
        let mut server_side = server_side;
        let mut byte = [0u8; 1];
        server_side.read_exact(&mut byte).unwrap();
        assert_eq!(&byte, b"x");

        drop(client);
        let mut fds = [PollFd::new(stream_fd(&server_side), POLLIN)];
        let ready = poll(&mut fds, 2_000).unwrap();
        assert!(ready >= 1);
        assert!(fds[0].readable(), "EOF surfaces as readable");
    }

    #[test]
    fn wake_pipe_interrupts_a_blocked_poll() {
        let wake = std::sync::Arc::new(WakePipe::new().unwrap());
        let waker = std::sync::Arc::clone(&wake);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(50));
            waker.wake();
            waker.wake(); // coalesces: the flag is already pending
        });
        let start = std::time::Instant::now();
        loop {
            let mut fds = [wake.poll_fd()];
            let _ = poll(&mut fds, 5_000).unwrap();
            if fds[0].fd() < 0 {
                // Non-Unix stand-in: no descriptor; the emulated poll
                // returns promptly regardless.
                break;
            }
            if fds[0].readable() {
                wake.drain();
                break;
            }
            assert!(
                start.elapsed() < std::time::Duration::from_secs(5),
                "wake never arrived"
            );
        }
        handle.join().unwrap();
        // A second wake after the drain writes a fresh byte.
        wake.wake();
        let mut fds = [wake.poll_fd()];
        let _ = poll(&mut fds, 2_000).unwrap();
        if fds[0].fd() >= 0 {
            assert!(fds[0].readable());
            wake.drain();
        }
    }
}
