//! The framed wire protocol: handshake, length-prefixed frames, and the
//! typed request/response frame enums.
//!
//! The byte layout is specified normatively in `docs/protocol.md`. In
//! short: a connection opens with an 8-byte preamble from each side
//! (`"QBSP"` magic + `u16` protocol version + reserved `u16`). The
//! versions are **negotiated** (see [`negotiate`]): the server answers a
//! v1 client with v1 and anything newer with the highest version it
//! speaks, so old clients keep working bit-identically. After the
//! handshake both directions carry frames — under v1
//!
//! ```text
//! [len: u32 LE][tag: u8][payload: len-1 bytes]
//! ```
//!
//! and under v2 every frame additionally opens with a request ID
//! ([`qbs_core::wire::RequestId`]) so responses can be pipelined and
//! complete out of order:
//!
//! ```text
//! [len: u32 LE][id: u32 LE][tag: u8][payload: len-5 bytes]
//! ```
//!
//! Under v3 the envelope additionally carries a 64-bit trace ID
//! ([`qbs_core::TraceId`]) between the request ID and the tag, so one
//! request can be followed through a router into a replica's slow-query
//! log:
//!
//! ```text
//! [len: u32 LE][id: u32 LE][trace: u64 LE][tag: u8][payload: len-13 bytes]
//! ```
//!
//! Payloads reuse the canonical little-endian encodings of
//! [`qbs_core::wire`], so a server response decodes into exactly the
//! [`QueryOutcome`] values a local [`qbs_core::Qbs::submit`] call would
//! return. Every malformed input — bad magic, foreign version, oversized
//! frame, unknown tag, truncated or corrupt payload — surfaces as a typed
//! [`ProtocolError`], never a panic; the robustness test suite sweeps
//! truncations and bit flips over every frame kind to enforce it.

use std::fmt;
use std::io::{Read, Write};

use qbs_core::wire::{RequestId, Wire, WireError, WireReader};
use qbs_core::{EngineStats, MetricsSnapshot, QueryOutcome, QueryRequest, RouterStats, TraceId};

use crate::admission::{AdmissionStats, BusyReason};

/// Magic bytes opening every connection preamble.
pub const PROTOCOL_MAGIC: [u8; 4] = *b"QBSP";

/// Highest protocol version spoken by this build. The handshake
/// negotiates down to the peer's version when it is older (see
/// [`negotiate`]); additions bump this.
pub const PROTOCOL_VERSION: u16 = 3;

/// Oldest protocol version this build still speaks. v1 connections are
/// served byte-identically to pre-v2 builds.
pub const MIN_PROTOCOL_VERSION: u16 = 1;

/// Resolves the version to speak with a peer that announced `theirs`.
///
/// The rule is monotone and forward-compatible: a peer announcing a
/// version this build does not know yet is assumed to also speak
/// everything older (exactly how this build treats v1), so the connection
/// proceeds at [`PROTOCOL_VERSION`]. Only versions below
/// [`MIN_PROTOCOL_VERSION`] are unspeakable.
pub fn negotiate(theirs: u16) -> Option<u16> {
    if theirs < MIN_PROTOCOL_VERSION {
        None
    } else {
        Some(theirs.min(PROTOCOL_VERSION))
    }
}

/// Hard cap on one frame's length field. Large enough for a 4096-request
/// batch of path-graph answers on real graphs; small enough that a
/// corrupted length can never drive an allocation bomb.
pub const MAX_FRAME_LEN: u32 = 64 << 20;

/// Byte length of the connection preamble each side sends.
pub const PREAMBLE_LEN: usize = 8;

/// A client-to-server frame.
#[derive(Clone, Debug, PartialEq)]
pub enum RequestFrame {
    /// Execute a heterogeneous batch of typed requests.
    Batch(Vec<QueryRequest>),
    /// Snapshot the server's serving/admission counters.
    Stats,
    /// Liveness probe.
    Ping,
    /// Ask the server to drain in-flight batches and exit.
    Shutdown,
    /// Snapshot the server's per-stage latency histograms (v3+; a router
    /// answers with the bucket-wise merge across its replicas).
    Metrics,
}

/// A server-to-client frame.
// `Stats` dwarfs the other variants since it grew the optional router
// section, but it is a rare control frame — boxing it would complicate
// every construction site to shrink a frame that is built a handful of
// times per connection lifetime.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug, PartialEq)]
pub enum ResponseFrame {
    /// Per-request outcomes of a [`RequestFrame::Batch`], in input order.
    Batch(Vec<QueryOutcome>),
    /// Reply to [`RequestFrame::Stats`].
    Stats(ServerStats),
    /// Reply to [`RequestFrame::Ping`].
    Pong,
    /// Reply to [`RequestFrame::Shutdown`]: the drain has begun.
    ShutdownAck,
    /// Reply to [`RequestFrame::Metrics`].
    Metrics(MetricsSnapshot),
    /// The batch was shed by admission control; retry later (the
    /// connection stays healthy).
    Busy(BusyReason),
    /// A typed protocol-level failure; the server closes the connection
    /// after sending it.
    Error(WireFault),
}

/// Counter snapshot returned by the `Stats` frame: the session's serving
/// counters plus the admission-control counters. A scatter/gather router
/// (`qbs route`) answers the same frame with its *merged* per-replica
/// engine counters and the routing-tier breakdown in
/// [`ServerStats::router`]; a plain `qbs serve` leaves it `None`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ServerStats {
    /// Engine/session counters (requests, batches, errors, cache). On a
    /// router these are the sums across every reachable replica.
    pub engine: EngineStats,
    /// Admission counters of the answering process (admitted, shed,
    /// in-flight).
    pub admission: AdmissionStats,
    /// Routing-tier counters; present only when a router answered.
    pub router: Option<RouterStats>,
}

impl fmt::Display for ServerStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}\n{}", self.engine, self.admission)?;
        if let Some(router) = &self.router {
            write!(f, "\n{router}")?;
        }
        Ok(())
    }
}

impl Wire for ServerStats {
    fn encode(&self, out: &mut Vec<u8>) {
        self.engine.encode(out);
        self.admission.encode(out);
        self.router.encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(ServerStats {
            engine: EngineStats::decode(r)?,
            admission: AdmissionStats::decode(r)?,
            router: Option::<RouterStats>::decode(r)?,
        })
    }
}

/// Stable error codes carried by [`ResponseFrame::Error`] — the remote
/// half of [`ProtocolError`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireFault {
    /// Stable numeric code (see `docs/protocol.md`).
    pub code: u8,
    /// Human-readable detail.
    pub message: String,
}

/// Error codes used in [`WireFault::code`].
pub mod fault_code {
    /// The peer spoke a different protocol version.
    pub const VERSION_MISMATCH: u8 = 1;
    /// A frame payload failed to decode.
    pub const MALFORMED: u8 = 2;
    /// A frame carried an unknown tag.
    pub const UNKNOWN_TAG: u8 = 3;
    /// A frame length exceeded [`super::MAX_FRAME_LEN`].
    pub const FRAME_TOO_LARGE: u8 = 4;
    /// The server is shutting down and will not accept more work.
    pub const SHUTTING_DOWN: u8 = 5;
}

impl Wire for WireFault {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(self.code);
        self.message.encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(WireFault {
            code: r.u8("fault code")?,
            message: String::decode(r)?,
        })
    }
}

/// Everything that can go wrong on a protocol endpoint (client or server
/// side): transport failures, handshake rejections, and malformed frames.
#[derive(Debug)]
pub enum ProtocolError {
    /// Underlying socket failure (includes clean EOF mid-frame).
    Io(std::io::Error),
    /// The preamble did not start with [`PROTOCOL_MAGIC`].
    BadMagic([u8; 4]),
    /// The peer speaks a different protocol version.
    VersionMismatch {
        /// Version of this endpoint.
        ours: u16,
        /// Version announced by the peer.
        theirs: u16,
    },
    /// A frame announced a length above [`MAX_FRAME_LEN`].
    FrameTooLarge {
        /// The announced length.
        len: u32,
    },
    /// A frame carried a tag this endpoint does not know.
    UnknownTag(u8),
    /// A frame payload failed to decode.
    Malformed(WireError),
    /// The peer reported a typed fault and closed the connection.
    Remote(WireFault),
    /// The connection itself was shed by admission control (the server
    /// refused it at accept time with a `Busy` frame).
    Shed(BusyReason),
    /// The peer answered with a frame kind the request cannot produce.
    UnexpectedFrame(&'static str),
    /// A [`crate::Ticket`] was redeemed twice, or never issued by this
    /// connection (client-side bookkeeping error, nothing read).
    UnknownTicket(RequestId),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Io(e) => write!(f, "i/o error: {e}"),
            ProtocolError::BadMagic(magic) => {
                write!(f, "bad protocol magic {magic:02x?} (expected \"QBSP\")")
            }
            ProtocolError::VersionMismatch { ours, theirs } => {
                write!(
                    f,
                    "protocol version mismatch: we speak {ours}, peer speaks {theirs}"
                )
            }
            ProtocolError::FrameTooLarge { len } => {
                write!(f, "frame length {len} exceeds the {MAX_FRAME_LEN}-byte cap")
            }
            ProtocolError::UnknownTag(tag) => write!(f, "unknown frame tag {tag:#04x}"),
            ProtocolError::Malformed(e) => write!(f, "malformed frame payload: {e}"),
            ProtocolError::Remote(fault) => {
                write!(f, "peer fault {}: {}", fault.code, fault.message)
            }
            ProtocolError::Shed(reason) => {
                write!(f, "connection shed by admission control: {reason}")
            }
            ProtocolError::UnexpectedFrame(what) => {
                write!(f, "peer answered with an unexpected {what} frame")
            }
            ProtocolError::UnknownTicket(id) => {
                write!(f, "ticket {id} was never issued or already redeemed")
            }
        }
    }
}

impl std::error::Error for ProtocolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtocolError::Io(e) => Some(e),
            ProtocolError::Malformed(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ProtocolError {
    fn from(e: std::io::Error) -> Self {
        ProtocolError::Io(e)
    }
}

impl From<WireError> for ProtocolError {
    fn from(e: WireError) -> Self {
        ProtocolError::Malformed(e)
    }
}

// Frame tags. Requests use the low range, responses the high range, so a
// desynchronised endpoint fails with `UnknownTag` instead of misparsing.
const TAG_BATCH: u8 = 0x01;
const TAG_STATS: u8 = 0x02;
const TAG_PING: u8 = 0x03;
const TAG_SHUTDOWN: u8 = 0x04;
const TAG_METRICS: u8 = 0x05;
const TAG_RESP_BATCH: u8 = 0x81;
const TAG_RESP_STATS: u8 = 0x82;
const TAG_RESP_PONG: u8 = 0x83;
const TAG_RESP_SHUTDOWN_ACK: u8 = 0x84;
const TAG_RESP_METRICS: u8 = 0x85;
const TAG_RESP_BUSY: u8 = 0x90;
const TAG_RESP_ERROR: u8 = 0x91;

/// Encodes a `Batch` frame body straight from a request slice — byte-equal
/// to `RequestFrame::Batch(requests.to_vec()).encode_body()` without the
/// intermediate clone (the client's hot path).
pub fn encode_batch_body(requests: &[QueryRequest]) -> Vec<u8> {
    let mut out = vec![TAG_BATCH];
    out.extend_from_slice(&(requests.len() as u32).to_le_bytes());
    for request in requests {
        request.encode(&mut out);
    }
    out
}

impl RequestFrame {
    /// Encodes the frame body (tag + payload, without the length prefix).
    pub fn encode_body(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            RequestFrame::Batch(requests) => {
                out.push(TAG_BATCH);
                requests.encode(&mut out);
            }
            RequestFrame::Stats => out.push(TAG_STATS),
            RequestFrame::Ping => out.push(TAG_PING),
            RequestFrame::Shutdown => out.push(TAG_SHUTDOWN),
            RequestFrame::Metrics => out.push(TAG_METRICS),
        }
        out
    }

    /// Decodes a frame body (tag + payload). Malformed bodies yield typed
    /// errors, never panics.
    pub fn decode_body(body: &[u8]) -> Result<RequestFrame, ProtocolError> {
        let mut r = WireReader::new(body);
        let tag = r.u8("frame tag").map_err(ProtocolError::Malformed)?;
        let frame = match tag {
            TAG_BATCH => RequestFrame::Batch(Vec::<QueryRequest>::decode(&mut r)?),
            TAG_STATS => RequestFrame::Stats,
            TAG_PING => RequestFrame::Ping,
            TAG_SHUTDOWN => RequestFrame::Shutdown,
            TAG_METRICS => RequestFrame::Metrics,
            other => return Err(ProtocolError::UnknownTag(other)),
        };
        r.finish().map_err(ProtocolError::Malformed)?;
        Ok(frame)
    }
}

impl ResponseFrame {
    /// Encodes the frame body (tag + payload, without the length prefix).
    pub fn encode_body(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            ResponseFrame::Batch(outcomes) => {
                out.push(TAG_RESP_BATCH);
                outcomes.encode(&mut out);
            }
            ResponseFrame::Stats(stats) => {
                out.push(TAG_RESP_STATS);
                stats.encode(&mut out);
            }
            ResponseFrame::Pong => out.push(TAG_RESP_PONG),
            ResponseFrame::ShutdownAck => out.push(TAG_RESP_SHUTDOWN_ACK),
            ResponseFrame::Metrics(snapshot) => {
                out.push(TAG_RESP_METRICS);
                snapshot.encode(&mut out);
            }
            ResponseFrame::Busy(reason) => {
                out.push(TAG_RESP_BUSY);
                reason.encode(&mut out);
            }
            ResponseFrame::Error(fault) => {
                out.push(TAG_RESP_ERROR);
                fault.encode(&mut out);
            }
        }
        out
    }

    /// Decodes a frame body (tag + payload).
    pub fn decode_body(body: &[u8]) -> Result<ResponseFrame, ProtocolError> {
        let mut r = WireReader::new(body);
        let tag = r.u8("frame tag").map_err(ProtocolError::Malformed)?;
        let frame = match tag {
            TAG_RESP_BATCH => ResponseFrame::Batch(Vec::<QueryOutcome>::decode(&mut r)?),
            TAG_RESP_STATS => ResponseFrame::Stats(ServerStats::decode(&mut r)?),
            TAG_RESP_PONG => ResponseFrame::Pong,
            TAG_RESP_SHUTDOWN_ACK => ResponseFrame::ShutdownAck,
            TAG_RESP_METRICS => ResponseFrame::Metrics(MetricsSnapshot::decode(&mut r)?),
            TAG_RESP_BUSY => ResponseFrame::Busy(BusyReason::decode(&mut r)?),
            TAG_RESP_ERROR => ResponseFrame::Error(WireFault::decode(&mut r)?),
            other => return Err(ProtocolError::UnknownTag(other)),
        };
        r.finish().map_err(ProtocolError::Malformed)?;
        Ok(frame)
    }
}

/// Writes the 8-byte connection preamble announcing [`PROTOCOL_VERSION`].
pub fn write_preamble<W: Write>(w: &mut W) -> Result<(), ProtocolError> {
    write_preamble_version(w, PROTOCOL_VERSION)
}

/// Writes the 8-byte connection preamble announcing a specific version —
/// the server's negotiated reply, or a client forcing v1.
pub fn write_preamble_version<W: Write>(w: &mut W, version: u16) -> Result<(), ProtocolError> {
    let mut preamble = [0u8; PREAMBLE_LEN];
    preamble[..4].copy_from_slice(&PROTOCOL_MAGIC);
    preamble[4..6].copy_from_slice(&version.to_le_bytes());
    w.write_all(&preamble)?;
    Ok(())
}

/// Reads the peer's 8-byte preamble, validating the magic, and returns
/// the version the peer announced. A version below
/// [`MIN_PROTOCOL_VERSION`] (i.e. 0, which no build has ever spoken) is
/// rejected here; everything else is the caller's [`negotiate`] decision.
pub fn read_preamble<R: Read>(r: &mut R) -> Result<u16, ProtocolError> {
    let mut preamble = [0u8; PREAMBLE_LEN];
    r.read_exact(&mut preamble)?;
    let magic: [u8; 4] = preamble[..4].try_into().expect("fixed split");
    if magic != PROTOCOL_MAGIC {
        return Err(ProtocolError::BadMagic(magic));
    }
    let theirs = u16::from_le_bytes([preamble[4], preamble[5]]);
    if theirs < MIN_PROTOCOL_VERSION {
        return Err(ProtocolError::VersionMismatch {
            ours: PROTOCOL_VERSION,
            theirs,
        });
    }
    Ok(theirs)
}

/// Prepends the v2 request-ID envelope to a frame body: the result is the
/// `[id][tag][payload]` byte string a v2 frame's length prefix counts.
pub fn encode_envelope(id: RequestId, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + body.len());
    id.encode(&mut out);
    out.extend_from_slice(body);
    out
}

/// Splits a v2 frame payload into its request ID and the enclosed frame
/// body. A payload too short to carry the ID is a typed
/// [`ProtocolError::Malformed`], never a panic.
pub fn split_envelope(payload: &[u8]) -> Result<(RequestId, &[u8]), ProtocolError> {
    if payload.len() < 4 {
        return Err(ProtocolError::Malformed(WireError::Truncated {
            what: "request id envelope",
            needed: 4,
            remaining: payload.len(),
        }));
    }
    let id = RequestId(u32::from_le_bytes(
        payload[..4].try_into().expect("fixed split"),
    ));
    Ok((id, &payload[4..]))
}

/// Prepends the v3 request-ID + trace envelope to a frame body: the
/// result is the `[id][trace][tag][payload]` byte string a v3 frame's
/// length prefix counts.
pub fn encode_envelope_v3(id: RequestId, trace: TraceId, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(12 + body.len());
    id.encode(&mut out);
    out.extend_from_slice(&trace.0.to_le_bytes());
    out.extend_from_slice(body);
    out
}

/// Splits a v3 frame payload into its request ID, trace ID, and the
/// enclosed frame body. A payload too short to carry the envelope is a
/// typed [`ProtocolError::Malformed`], never a panic.
pub fn split_envelope_v3(payload: &[u8]) -> Result<(RequestId, TraceId, &[u8]), ProtocolError> {
    if payload.len() < 12 {
        return Err(ProtocolError::Malformed(WireError::Truncated {
            what: "request id + trace envelope",
            needed: 12,
            remaining: payload.len(),
        }));
    }
    let id = RequestId(u32::from_le_bytes(
        payload[..4].try_into().expect("fixed split"),
    ));
    let trace = TraceId(u64::from_le_bytes(
        payload[4..12].try_into().expect("fixed split"),
    ));
    Ok((id, trace, &payload[12..]))
}

/// Writes one length-prefixed frame body.
pub fn write_frame<W: Write>(w: &mut W, body: &[u8]) -> Result<(), ProtocolError> {
    let len =
        u32::try_from(body.len()).map_err(|_| ProtocolError::FrameTooLarge { len: u32::MAX })?;
    if len > MAX_FRAME_LEN {
        return Err(ProtocolError::FrameTooLarge { len });
    }
    w.write_all(&len.to_le_bytes())?;
    w.write_all(body)?;
    w.flush()?;
    Ok(())
}

/// Reads one length-prefixed frame body. The length is validated against
/// [`MAX_FRAME_LEN`] before any allocation.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Vec<u8>, ProtocolError> {
    let mut len_bytes = [0u8; 4];
    r.read_exact(&mut len_bytes)?;
    let len = u32::from_le_bytes(len_bytes);
    if len > MAX_FRAME_LEN {
        return Err(ProtocolError::FrameTooLarge { len });
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    Ok(body)
}

/// Convenience: write one v1 request frame.
pub fn write_request<W: Write>(w: &mut W, frame: &RequestFrame) -> Result<(), ProtocolError> {
    write_frame(w, &frame.encode_body())
}

/// Convenience: write one v1 response frame.
pub fn write_response<W: Write>(w: &mut W, frame: &ResponseFrame) -> Result<(), ProtocolError> {
    write_frame(w, &frame.encode_body())
}

/// Convenience: read one v1 request frame.
pub fn read_request<R: Read>(r: &mut R) -> Result<RequestFrame, ProtocolError> {
    RequestFrame::decode_body(&read_frame(r)?)
}

/// Convenience: read one v1 response frame.
pub fn read_response<R: Read>(r: &mut R) -> Result<ResponseFrame, ProtocolError> {
    ResponseFrame::decode_body(&read_frame(r)?)
}

/// Convenience: write one v2 request frame under `id`'s envelope.
pub fn write_request_v2<W: Write>(
    w: &mut W,
    id: RequestId,
    frame: &RequestFrame,
) -> Result<(), ProtocolError> {
    write_frame(w, &encode_envelope(id, &frame.encode_body()))
}

/// Convenience: write one v2 response frame under `id`'s envelope.
pub fn write_response_v2<W: Write>(
    w: &mut W,
    id: RequestId,
    frame: &ResponseFrame,
) -> Result<(), ProtocolError> {
    write_frame(w, &encode_envelope(id, &frame.encode_body()))
}

/// Convenience: read one v2 request frame and its envelope ID.
pub fn read_request_v2<R: Read>(r: &mut R) -> Result<(RequestId, RequestFrame), ProtocolError> {
    let payload = read_frame(r)?;
    let (id, body) = split_envelope(&payload)?;
    Ok((id, RequestFrame::decode_body(body)?))
}

/// Convenience: read one v2 response frame and its envelope ID.
pub fn read_response_v2<R: Read>(r: &mut R) -> Result<(RequestId, ResponseFrame), ProtocolError> {
    let payload = read_frame(r)?;
    let (id, body) = split_envelope(&payload)?;
    Ok((id, ResponseFrame::decode_body(body)?))
}

/// Convenience: write one v3 request frame under `id`'s envelope,
/// carrying `trace`.
pub fn write_request_v3<W: Write>(
    w: &mut W,
    id: RequestId,
    trace: TraceId,
    frame: &RequestFrame,
) -> Result<(), ProtocolError> {
    write_frame(w, &encode_envelope_v3(id, trace, &frame.encode_body()))
}

/// Convenience: write one v3 response frame under `id`'s envelope,
/// echoing `trace`.
pub fn write_response_v3<W: Write>(
    w: &mut W,
    id: RequestId,
    trace: TraceId,
    frame: &ResponseFrame,
) -> Result<(), ProtocolError> {
    write_frame(w, &encode_envelope_v3(id, trace, &frame.encode_body()))
}

/// Convenience: read one v3 request frame with its envelope ID and trace.
pub fn read_request_v3<R: Read>(
    r: &mut R,
) -> Result<(RequestId, TraceId, RequestFrame), ProtocolError> {
    let payload = read_frame(r)?;
    let (id, trace, body) = split_envelope_v3(&payload)?;
    Ok((id, trace, RequestFrame::decode_body(body)?))
}

/// Convenience: read one v3 response frame with its envelope ID and trace.
pub fn read_response_v3<R: Read>(
    r: &mut R,
) -> Result<(RequestId, TraceId, ResponseFrame), ProtocolError> {
    let payload = read_frame(r)?;
    let (id, trace, body) = split_envelope_v3(&payload)?;
    Ok((id, trace, ResponseFrame::decode_body(body)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbs_core::RequestError;

    fn roundtrip_request(frame: RequestFrame) {
        let body = frame.encode_body();
        assert_eq!(RequestFrame::decode_body(&body).unwrap(), frame);
    }

    fn roundtrip_response(frame: ResponseFrame) {
        let body = frame.encode_body();
        assert_eq!(ResponseFrame::decode_body(&body).unwrap(), frame);
    }

    #[test]
    fn frames_roundtrip() {
        let batch = vec![
            QueryRequest::distance(1, 2),
            QueryRequest::path_graph(3, 4).with_stats(),
            QueryRequest::sketch(5, 6).uncached(),
        ];
        assert_eq!(
            encode_batch_body(&batch),
            RequestFrame::Batch(batch.clone()).encode_body(),
            "the slice fast path is byte-equal to the enum encoder"
        );
        roundtrip_request(RequestFrame::Batch(batch));
        roundtrip_request(RequestFrame::Batch(Vec::new()));
        roundtrip_request(RequestFrame::Stats);
        roundtrip_request(RequestFrame::Ping);
        roundtrip_request(RequestFrame::Shutdown);
        roundtrip_request(RequestFrame::Metrics);

        roundtrip_response(ResponseFrame::Batch(vec![
            QueryOutcome::Distance(5),
            QueryOutcome::Error(RequestError::VertexOutOfRange {
                vertex: 9,
                num_vertices: 4,
            }),
        ]));
        roundtrip_response(ResponseFrame::Stats(ServerStats::default()));
        roundtrip_response(ResponseFrame::Pong);
        roundtrip_response(ResponseFrame::ShutdownAck);
        roundtrip_response(ResponseFrame::Metrics(MetricsSnapshot::default()));
        let hist = {
            let h = qbs_core::LatencyHistogram::new();
            h.record_ns(1_000);
            h.record_ns(2_000_000);
            h.snapshot()
        };
        roundtrip_response(ResponseFrame::Metrics(MetricsSnapshot {
            hists: vec![hist],
            slow_queries: 2,
        }));
        roundtrip_response(ResponseFrame::Busy(BusyReason::BatchTooLarge {
            limit: 16,
            got: 40,
        }));
        roundtrip_response(ResponseFrame::Error(WireFault {
            code: fault_code::MALFORMED,
            message: "truncated".into(),
        }));
    }

    #[test]
    fn preamble_carries_the_announced_version() {
        let mut buf = Vec::new();
        write_preamble(&mut buf).unwrap();
        assert_eq!(buf.len(), PREAMBLE_LEN);
        assert_eq!(read_preamble(&mut &buf[..]).unwrap(), PROTOCOL_VERSION);

        let mut v1 = Vec::new();
        write_preamble_version(&mut v1, 1).unwrap();
        assert_eq!(read_preamble(&mut &v1[..]).unwrap(), 1);

        let mut wrong_magic = buf.clone();
        wrong_magic[0] = b'X';
        assert!(matches!(
            read_preamble(&mut &wrong_magic[..]),
            Err(ProtocolError::BadMagic(_))
        ));

        // A future version is returned for negotiation, not rejected.
        let mut future = buf.clone();
        future[4..6].copy_from_slice(&99u16.to_le_bytes());
        assert_eq!(read_preamble(&mut &future[..]).unwrap(), 99);

        // Version 0 predates every build and is rejected at the read.
        let mut zero = buf.clone();
        zero[4..6].copy_from_slice(&0u16.to_le_bytes());
        assert!(matches!(
            read_preamble(&mut &zero[..]),
            Err(ProtocolError::VersionMismatch { theirs: 0, .. })
        ));

        assert!(matches!(
            read_preamble(&mut &buf[..4]),
            Err(ProtocolError::Io(_))
        ));
    }

    #[test]
    fn negotiation_is_monotone_and_forward_compatible() {
        assert_eq!(negotiate(0), None);
        assert_eq!(negotiate(1), Some(1));
        assert_eq!(negotiate(2), Some(2));
        assert_eq!(negotiate(3), Some(3));
        // Unknown future versions speak everything older, so the
        // connection proceeds at our highest version.
        assert_eq!(negotiate(4), Some(PROTOCOL_VERSION));
        assert_eq!(negotiate(u16::MAX), Some(PROTOCOL_VERSION));
    }

    #[test]
    fn envelopes_roundtrip_and_reject_truncation() {
        let frame = RequestFrame::Batch(vec![QueryRequest::distance(1, 2)]);
        let body = frame.encode_body();
        let enveloped = encode_envelope(RequestId(7), &body);
        assert_eq!(enveloped.len(), body.len() + 4);
        let (id, inner) = split_envelope(&enveloped).unwrap();
        assert_eq!(id, RequestId(7));
        assert_eq!(inner, &body[..]);

        for cut in 0..4 {
            assert!(matches!(
                split_envelope(&enveloped[..cut]),
                Err(ProtocolError::Malformed(WireError::Truncated { .. }))
            ));
        }

        let mut buf = Vec::new();
        write_request_v2(&mut buf, RequestId(9), &frame).unwrap();
        let (id, decoded) = read_request_v2(&mut &buf[..]).unwrap();
        assert_eq!((id, decoded), (RequestId(9), frame));

        let response = ResponseFrame::Pong;
        let mut buf = Vec::new();
        write_response_v2(&mut buf, RequestId(9), &response).unwrap();
        let (id, decoded) = read_response_v2(&mut &buf[..]).unwrap();
        assert_eq!((id, decoded), (RequestId(9), response));
    }

    #[test]
    fn v3_envelopes_carry_the_trace_and_reject_truncation() {
        let frame = RequestFrame::Batch(vec![QueryRequest::distance(1, 2)]);
        let body = frame.encode_body();
        let trace = TraceId(0xDEAD_BEEF_CAFE_F00D);
        let enveloped = encode_envelope_v3(RequestId(7), trace, &body);
        assert_eq!(enveloped.len(), body.len() + 12);
        let (id, got_trace, inner) = split_envelope_v3(&enveloped).unwrap();
        assert_eq!((id, got_trace), (RequestId(7), trace));
        assert_eq!(inner, &body[..]);

        for cut in 0..12 {
            assert!(matches!(
                split_envelope_v3(&enveloped[..cut]),
                Err(ProtocolError::Malformed(WireError::Truncated { .. }))
            ));
        }

        let mut buf = Vec::new();
        write_request_v3(&mut buf, RequestId(9), trace, &frame).unwrap();
        let (id, got_trace, decoded) = read_request_v3(&mut &buf[..]).unwrap();
        assert_eq!((id, got_trace, decoded), (RequestId(9), trace, frame));

        let response = ResponseFrame::Metrics(MetricsSnapshot::default());
        let mut buf = Vec::new();
        write_response_v3(&mut buf, RequestId(9), TraceId::NONE, &response).unwrap();
        let (id, got_trace, decoded) = read_response_v3(&mut &buf[..]).unwrap();
        assert_eq!(
            (id, got_trace, decoded),
            (RequestId(9), TraceId::NONE, response)
        );

        // Single-bit corruption of an enveloped metrics frame is always a
        // typed result, never a panic.
        let snapshot = ResponseFrame::Metrics(MetricsSnapshot {
            hists: vec![Default::default(); 3],
            slow_queries: 1,
        });
        let enveloped = encode_envelope_v3(RequestId(3), trace, &snapshot.encode_body());
        for byte in 0..enveloped.len() {
            for bit in 0..8 {
                let mut flipped = enveloped.clone();
                flipped[byte] ^= 1 << bit;
                if let Ok((_, _, inner)) = split_envelope_v3(&flipped) {
                    let _ = ResponseFrame::decode_body(inner);
                }
            }
        }
    }

    #[test]
    fn frame_lengths_are_capped() {
        let mut oversized = ((MAX_FRAME_LEN + 1).to_le_bytes()).to_vec();
        oversized.extend_from_slice(&[0; 8]);
        assert!(matches!(
            read_frame(&mut &oversized[..]),
            Err(ProtocolError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn unknown_tags_and_trailing_bytes_are_typed_errors() {
        assert!(matches!(
            RequestFrame::decode_body(&[0x7F]),
            Err(ProtocolError::UnknownTag(0x7F))
        ));
        assert!(matches!(
            ResponseFrame::decode_body(&[0x01]),
            Err(ProtocolError::UnknownTag(0x01)),
        ));
        // A ping with a stray payload byte is malformed, not silently ok.
        assert!(matches!(
            RequestFrame::decode_body(&[TAG_PING, 0]),
            Err(ProtocolError::Malformed(WireError::Trailing { extra: 1 }))
        ));
        assert!(matches!(
            RequestFrame::decode_body(&[]),
            Err(ProtocolError::Malformed(WireError::Truncated { .. }))
        ));
        let display = ProtocolError::UnknownTag(0x7F).to_string();
        assert!(display.contains("0x7f"), "{display}");
    }

    #[test]
    fn frame_io_roundtrips_over_a_stream() {
        let frame = RequestFrame::Batch(vec![QueryRequest::distance(1, 2)]);
        let mut buf = Vec::new();
        write_request(&mut buf, &frame).unwrap();
        assert_eq!(read_request(&mut &buf[..]).unwrap(), frame);

        let response = ResponseFrame::Batch(vec![QueryOutcome::Distance(1)]);
        let mut buf = Vec::new();
        write_response(&mut buf, &response).unwrap();
        assert_eq!(read_response(&mut &buf[..]).unwrap(), response);
    }
}
