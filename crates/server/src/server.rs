//! The long-running TCP server: a listener thread plus a bounded
//! connection-handler pool over one shared [`Qbs`] session.
//!
//! Architecture (one process, N connections, one mmap'd index):
//!
//! ```text
//! listener thread ──claim idle──▶ handoff channel ──▶ handler pool (H threads)
//!        │  (no idle handler → preamble + Busy + close)       │
//!        ▼                                                    ▼
//!   ShutdownSignal ◀─── Shutdown frame / SIGINT        Arc<Qbs>::submit
//!                                                      (admission-gated)
//! ```
//!
//! Every handler serves one connection at a time: handshake, then a frame
//! loop that executes `Batch` frames through [`Qbs::submit`] (so all
//! connections share the session's workspace pool and answer cache),
//! answers `Stats`/`Ping`, and honours `Shutdown`. Admission control
//! ([`crate::admission`]) gates every batch; shed work is answered with a
//! typed `Busy` frame, never a hang.
//!
//! Shutdown is graceful from either direction — a `Shutdown` frame or
//! [`ServerHandle::shutdown`] (which the CLI wires to SIGINT): the signal
//! flag flips, the polling listener observes it and exits, handlers
//! finish the batch they are executing (in-flight work is drained,
//! responses are written) and close their connections, and `shutdown`
//! joins every thread before returning, so the process can unmap the
//! index file cleanly.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use qbs_core::Qbs;

use crate::admission::{Admission, AdmissionConfig, BusyReason};
use crate::protocol::{
    self, fault_code, ProtocolError, RequestFrame, ResponseFrame, ServerStats, WireFault,
    MAX_FRAME_LEN,
};

/// How often an idle handler re-checks the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// How often the listener polls its non-blocking accept for new
/// connections and the shutdown flag. Short: this is first-connect
/// latency for every client (the poll is a sleep, so an idle listener
/// still costs ~nothing).
const ACCEPT_POLL: Duration = Duration::from_millis(1);

/// How long a handler will wait for the rest of a frame once its first
/// byte has arrived (a stalled half-frame must not pin a handler forever).
const FRAME_TIMEOUT: Duration = Duration::from_secs(10);

/// Configuration of a [`QbsServer`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (see
    /// [`ServerHandle::local_addr`]).
    pub addr: String,
    /// Connection-handler threads — the physical bound on concurrently
    /// *served* connections. [`AdmissionConfig::max_connections`] only
    /// bites when set *below* this (it sheds with a typed reason instead
    /// of silently limiting).
    pub handler_threads: usize,
    /// Admission bounds (in-flight requests, batch size, connections).
    pub admission: AdmissionConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            handler_threads: 4,
            admission: AdmissionConfig::default(),
        }
    }
}

/// The shutdown latch shared by the listener, the handlers, and external
/// triggers (the CLI's SIGINT handler, the `Shutdown` protocol frame).
/// The listener polls a non-blocking accept against this flag, so a
/// trigger never depends on being able to dial the server's own address.
#[derive(Debug)]
pub struct ShutdownSignal {
    flag: AtomicBool,
}

impl ShutdownSignal {
    /// Whether shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }

    /// Requests shutdown. Idempotent; observed by the listener within its
    /// accept-poll interval and by idle handlers within theirs.
    pub fn trigger(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }
}

/// Namespace for starting servers (see [`QbsServer::start`]).
pub struct QbsServer;

impl QbsServer {
    /// Binds `config.addr` and starts serving `qbs` — returns immediately
    /// with a handle owning the listener and handler threads.
    pub fn start(qbs: Arc<Qbs>, config: ServerConfig) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let signal = Arc::new(ShutdownSignal {
            flag: AtomicBool::new(false),
        });
        let admission = Arc::new(Admission::new(config.admission));
        let dispatch = Arc::new(Dispatch::default());
        let pool_size = config.handler_threads.max(1);
        // The channel only ever holds claim-matched connections (see
        // [`Dispatch`]), so one slot per handler is always enough.
        let (tx, rx) = mpsc::sync_channel::<TcpStream>(pool_size);
        let rx = Arc::new(Mutex::new(rx));

        let handlers: Vec<JoinHandle<()>> = (0..pool_size)
            .map(|_| {
                let qbs = Arc::clone(&qbs);
                let dispatch = Arc::clone(&dispatch);
                let admission = Arc::clone(&admission);
                let signal = Arc::clone(&signal);
                let rx = Arc::clone(&rx);
                std::thread::spawn(move || handler_loop(&qbs, &dispatch, &admission, &signal, &rx))
            })
            .collect();

        let listener_thread = {
            let admission = Arc::clone(&admission);
            let signal = Arc::clone(&signal);
            let dispatch = Arc::clone(&dispatch);
            std::thread::spawn(move || {
                listener_loop(listener, tx, pool_size, &dispatch, &admission, &signal)
            })
        };

        // Don't return (and invite connections) until at least one handler
        // has parked — otherwise a connect racing the handler spawns would
        // be shed from a server that is merely still starting.
        let ready_deadline = std::time::Instant::now() + Duration::from_secs(1);
        while dispatch.idle_handlers.load(Ordering::SeqCst) == 0
            && std::time::Instant::now() < ready_deadline
        {
            std::thread::yield_now();
        }

        Ok(ServerHandle {
            addr,
            signal,
            admission,
            qbs,
            listener: Some(listener_thread),
            handlers,
        })
    }
}

/// A running server: owns its threads, joins them on
/// [`ServerHandle::shutdown`] or drop.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    signal: Arc<ShutdownSignal>,
    admission: Arc<Admission>,
    qbs: Arc<Qbs>,
    listener: Option<JoinHandle<()>>,
    handlers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shutdown latch — share it with a signal handler or watchdog;
    /// [`ShutdownSignal::trigger`] from anywhere initiates the same
    /// graceful drain as a `Shutdown` protocol frame.
    pub fn signal(&self) -> Arc<ShutdownSignal> {
        Arc::clone(&self.signal)
    }

    /// The served session (shared with every handler).
    pub fn qbs(&self) -> &Arc<Qbs> {
        &self.qbs
    }

    /// A snapshot of the server's serving + admission counters — the same
    /// value a `Stats` protocol frame returns.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            engine: self.qbs.engine_stats(),
            admission: self.admission.stats(),
        }
    }

    /// Triggers shutdown (idempotent), drains in-flight batches, joins the
    /// listener and every handler, and returns once the server is fully
    /// torn down — after this the process holds no serving threads and can
    /// drop the session (unmapping the index) safely.
    pub fn shutdown(&mut self) {
        self.signal.trigger();
        if let Some(listener) = self.listener.take() {
            let _ = listener.join();
        }
        // The listener owned the channel sender; with it joined, handlers
        // drain the queued connections and exit their recv loop.
        for handler in self.handlers.drain(..) {
            let _ = handler.join();
        }
        // All handlers are joined, so this returns immediately; it is the
        // documented invariant (no in-flight work survives shutdown).
        self.admission.drain();
    }

    /// Blocks until the shutdown latch flips (a `Shutdown` frame arrived
    /// or [`ShutdownSignal::trigger`] was called elsewhere), then tears the
    /// server down as [`ServerHandle::shutdown`] does.
    pub fn wait(mut self) {
        while !self.signal.is_shutdown() {
            std::thread::sleep(POLL_INTERVAL);
        }
        self.shutdown();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Listener/handler coordination counters. `idle_handlers` counts parked
/// **and unclaimed** handlers: a handler increments it when it parks on
/// the channel, and the *listener* decrements it when it claims one by
/// queueing a connection — a claim-then-send protocol, so two arrivals can
/// never both be queued against one idle handler (the TOCTOU a plain
/// "is anyone idle?" load would allow, parking the loser un-handshaken
/// behind a long session). `shed_threads` bounds the refusal helpers so a
/// connection flood cannot spawn threads without bound.
#[derive(Debug, Default)]
struct Dispatch {
    idle_handlers: AtomicUsize,
    shed_threads: AtomicUsize,
}

impl Dispatch {
    /// Claims one unclaimed idle handler; `false` means shed.
    fn claim_idle_handler(&self) -> bool {
        self.idle_handlers
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
            .is_ok()
    }
}

/// Cap on concurrent shed-refusal threads; refusals beyond it are dropped
/// outright (plain close) — under a flood, bounded resources beat
/// delivering every courtesy reply.
const MAX_SHED_THREADS: usize = 8;

/// Sheds a refused connection on a bounded helper thread. `refuse` paces
/// at the client's speed (preamble drain + linger), so it must never run
/// on the listener thread.
fn shed_detached(dispatch: &Arc<Dispatch>, stream: TcpStream, reason: BusyReason) {
    if dispatch.shed_threads.fetch_add(1, Ordering::SeqCst) >= MAX_SHED_THREADS {
        dispatch.shed_threads.fetch_sub(1, Ordering::SeqCst);
        return; // flood regime: close without the courtesy frame
    }
    let worker = Arc::clone(dispatch);
    let spawned = std::thread::Builder::new()
        .name("qbs-shed".into())
        .spawn(move || {
            shed(stream, reason);
            worker.shed_threads.fetch_sub(1, Ordering::SeqCst);
        });
    if spawned.is_err() {
        // Spawn failure (resource exhaustion): the stream was dropped with
        // the unrun closure; release the slot it claimed.
        dispatch.shed_threads.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Accept loop: polls a non-blocking accept (so a shutdown trigger is
/// observed within [`ACCEPT_POLL`] regardless of traffic) and hands each
/// connection to a claimed idle handler. A connection is shed with a typed
/// `Busy` the moment no handler is idle — queueing it would park the
/// client without a handshake until some unrelated session ends, which is
/// exactly the hang the protocol forbids. Accept errors back off instead
/// of busy-spinning — a flood-induced EMFILE must not peg a core.
fn listener_loop(
    listener: TcpListener,
    tx: SyncSender<TcpStream>,
    pool_size: usize,
    dispatch: &Arc<Dispatch>,
    admission: &Admission,
    signal: &ShutdownSignal,
) {
    loop {
        if signal.is_shutdown() {
            break;
        }
        let stream = match listener.accept() {
            Ok((stream, _peer)) => {
                // The accepted socket may inherit non-blocking mode on
                // some platforms; handlers expect blocking semantics.
                if stream.set_nonblocking(false).is_err() {
                    continue;
                }
                stream
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
                continue;
            }
            Err(_) => {
                // Transient (EMFILE under a connection flood, ...): retry
                // after a beat rather than spinning.
                std::thread::sleep(ACCEPT_POLL);
                continue;
            }
        };
        if !dispatch.claim_idle_handler() {
            admission.record_backlog_shed();
            shed_detached(
                dispatch,
                stream,
                BusyReason::NoIdleHandler {
                    handlers: pool_size as u64,
                },
            );
            continue;
        }
        match tx.try_send(stream) {
            Ok(()) => {}
            Err(TrySendError::Full(stream)) => {
                // Unreachable in practice: claims never exceed parked
                // handlers and the channel has one slot per handler. Kept
                // as a defensive shed — return the claim first.
                dispatch.idle_handlers.fetch_add(1, Ordering::SeqCst);
                admission.record_backlog_shed();
                shed_detached(
                    dispatch,
                    stream,
                    BusyReason::NoIdleHandler {
                        handlers: pool_size as u64,
                    },
                );
            }
            Err(TrySendError::Disconnected(_)) => break,
        }
    }
}

/// Writes `preamble + Busy(reason)` to a connection being refused.
fn shed(stream: TcpStream, reason: BusyReason) {
    refuse(stream, ResponseFrame::Busy(reason));
}

/// Refuses a connection with one typed response frame, with short timeouts
/// so a slow client cannot stall the caller. The client's own preamble is
/// drained first and the close lingers, so the refusal is delivered as
/// orderly data + FIN — never lost to a reset.
fn refuse(mut stream: TcpStream, frame: ResponseFrame) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
    let mut hello = [0u8; protocol::PREAMBLE_LEN];
    let _ = std::io::Read::read_exact(&mut stream, &mut hello);
    let _ = protocol::write_preamble(&mut stream);
    let _ = protocol::write_response(&mut stream, &frame);
    linger_close(stream);
}

/// Half-closes the write side and drains whatever the client still sends,
/// so a close after a queued reply can never turn into a TCP reset that
/// destroys the un-read reply. The drain is bounded by a hard deadline
/// (not just per-read timeouts): a client uploading forever gets its FIN
/// and then a plain close, it cannot pin the draining thread.
fn linger_close(mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let deadline = std::time::Instant::now() + Duration::from_millis(500);
    let mut sink = [0u8; 512];
    while std::time::Instant::now() < deadline {
        match std::io::Read::read(&mut stream, &mut sink) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
}

/// Handler thread body: pull connections off the shared channel until it
/// closes, serving each to completion.
fn handler_loop(
    qbs: &Qbs,
    dispatch: &Dispatch,
    admission: &Admission,
    signal: &ShutdownSignal,
    rx: &Mutex<Receiver<TcpStream>>,
) {
    loop {
        // Park: advertise this handler as idle. The matching decrement is
        // the listener's claim (see [`Dispatch`]), not ours.
        dispatch.idle_handlers.fetch_add(1, Ordering::SeqCst);
        let stream = {
            let rx = rx.lock().expect("connection channel poisoned");
            rx.recv()
        };
        let Ok(stream) = stream else {
            break; // listener gone, queue drained
        };
        if signal.is_shutdown() {
            // A connection queued behind the shutdown: refuse it cleanly.
            refuse(
                stream,
                ResponseFrame::Error(WireFault {
                    code: fault_code::SHUTTING_DOWN,
                    message: "server is shutting down".into(),
                }),
            );
            continue;
        }
        let mut stream = stream;
        match admission.admit_connection() {
            Ok(_guard) => {
                // Errors end the connection, not the server.
                let _ = serve_connection(qbs, admission, signal, &mut stream);
                linger_close(stream);
            }
            Err(reason) => shed(stream, reason),
        }
    }
}

/// Serves one connection: handshake, then the frame loop.
fn serve_connection(
    qbs: &Qbs,
    admission: &Admission,
    signal: &ShutdownSignal,
    stream: &mut TcpStream,
) -> Result<(), ProtocolError> {
    stream.set_nodelay(true).ok();
    stream.set_write_timeout(Some(FRAME_TIMEOUT))?;
    stream.set_read_timeout(Some(FRAME_TIMEOUT))?;

    // The client speaks first; a foreign version earns a typed fault frame
    // (we still announce our preamble so the client can decode it), bad
    // magic just closes — the byte stream cannot be trusted for framing.
    match protocol::read_preamble(&mut *stream) {
        Ok(()) => protocol::write_preamble(&mut *stream)?,
        Err(ProtocolError::VersionMismatch { ours, theirs }) => {
            protocol::write_preamble(&mut *stream)?;
            protocol::write_response(
                &mut *stream,
                &ResponseFrame::Error(WireFault {
                    code: fault_code::VERSION_MISMATCH,
                    message: format!("server speaks version {ours}, client sent {theirs}"),
                }),
            )?;
            return Ok(());
        }
        Err(e) => return Err(e),
    }

    loop {
        // Idle wait: peek (without consuming) so a poll timeout can never
        // desynchronise the framing, re-checking the shutdown flag between
        // polls. Once bytes are available the frame is read blocking (with
        // the stalled-frame timeout).
        match wait_for_data(stream, signal)? {
            DataEvent::Shutdown | DataEvent::Eof => return Ok(()),
            DataEvent::Ready => {}
        }
        let frame = match protocol::read_request(&mut *stream) {
            Ok(frame) => frame,
            Err(err) => {
                // Typed refusal on the way out; the connection is closed
                // because framing can no longer be trusted.
                let fault = match &err {
                    ProtocolError::FrameTooLarge { len } => WireFault {
                        code: fault_code::FRAME_TOO_LARGE,
                        message: format!("frame length {len} exceeds the cap"),
                    },
                    ProtocolError::UnknownTag(tag) => WireFault {
                        code: fault_code::UNKNOWN_TAG,
                        message: format!("unknown request tag {tag:#04x}"),
                    },
                    other => WireFault {
                        code: fault_code::MALFORMED,
                        message: other.to_string(),
                    },
                };
                let _ = protocol::write_response(&mut *stream, &ResponseFrame::Error(fault));
                return Err(err);
            }
        };
        match frame {
            RequestFrame::Batch(requests) => {
                let response = match admission.admit_batch(requests.len()) {
                    Ok(_permit) => ResponseFrame::Batch(qbs.submit(&requests)),
                    Err(reason) => ResponseFrame::Busy(reason),
                };
                send_response(stream, &response)?;
            }
            RequestFrame::Stats => {
                let stats = ServerStats {
                    engine: qbs.engine_stats(),
                    admission: admission.stats(),
                };
                send_response(stream, &ResponseFrame::Stats(stats))?;
            }
            RequestFrame::Ping => {
                send_response(stream, &ResponseFrame::Pong)?;
            }
            RequestFrame::Shutdown => {
                // Flip the latch before acking, so a client that saw the
                // ack can rely on the drain having begun.
                signal.trigger();
                protocol::write_response(&mut *stream, &ResponseFrame::ShutdownAck)?;
                return Ok(());
            }
        }
    }
}

/// Encodes and writes one response. A response that encodes past the
/// frame cap (a huge admitted batch of path-graph answers) is downgraded
/// to a typed `Error` frame — the client sees code 4 immediately and can
/// split the batch, instead of hanging on a silently closed connection —
/// and the connection is then closed (framing stays trustworthy, but the
/// request/response rhythm does not).
fn send_response(stream: &mut TcpStream, response: &ResponseFrame) -> Result<(), ProtocolError> {
    let body = response.encode_body();
    if body.len() > MAX_FRAME_LEN as usize {
        let _ = protocol::write_response(
            stream,
            &ResponseFrame::Error(WireFault {
                code: fault_code::FRAME_TOO_LARGE,
                message: format!(
                    "encoded response ({} bytes) exceeds the {MAX_FRAME_LEN}-byte frame cap; \
                     split the batch",
                    body.len()
                ),
            }),
        );
        return Err(ProtocolError::FrameTooLarge {
            len: u32::try_from(body.len()).unwrap_or(u32::MAX),
        });
    }
    protocol::write_frame(&mut *stream, &body)
}

enum DataEvent {
    Ready,
    Eof,
    Shutdown,
}

/// Waits until the connection has readable bytes, the peer closed, or
/// shutdown was requested — without consuming anything from the stream.
fn wait_for_data(stream: &TcpStream, signal: &ShutdownSignal) -> std::io::Result<DataEvent> {
    stream.set_read_timeout(Some(POLL_INTERVAL))?;
    let mut probe = [0u8; 1];
    let event = loop {
        if signal.is_shutdown() {
            break DataEvent::Shutdown;
        }
        match stream.peek(&mut probe) {
            Ok(0) => break DataEvent::Eof,
            Ok(_) => break DataEvent::Ready,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            Err(e) => return Err(e),
        }
    };
    stream.set_read_timeout(Some(FRAME_TIMEOUT))?;
    Ok(event)
}
