//! The long-running TCP server: one poll(2) reactor thread multiplexing
//! every connection, plus a fixed worker pool over one shared [`Qbs`]
//! session.
//!
//! Architecture (one process, thousands of connections, fixed threads):
//!
//! ```text
//!                 ┌────────────────────────────────────────────┐
//!                 │ reactor thread: poll(2) over listener +    │
//!  accept ──────▶ │ every connection; nonblocking reads decode │
//!                 │ frames, control frames answered inline     │
//!                 └───────┬───────────────────────▲────────────┘
//!                         │ Batch jobs            │ completions (wake pipe)
//!                         ▼                       │
//!                 ┌────────────────────────────────────────────┐
//!                 │ worker pool (W threads): Qbs::submit,      │
//!                 │ encode response, hand bytes back           │
//!                 └────────────────────────────────────────────┘
//! ```
//!
//! The reactor owns all connection state: handshake + version negotiation
//! (v1 peers are served byte-identically to the pre-reactor server, v2
//! peers get pipelined request-ID frames), per-connection read buffers
//! and write queues, and the out-of-order completion path — a worker
//! finishes a batch, pushes the encoded response, and wakes the reactor
//! through [`crate::poll::WakePipe`]; the reactor writes it whenever that
//! socket drains. Idle connections cost one pollfd entry, not a thread.
//!
//! Ordering: v1 connections get strictly in-order replies (one batch
//! executes at a time per connection, control frames queue behind it —
//! exactly the old thread-per-connection rhythm). v2 connections pipeline
//! freely; responses carry the request's ID and may arrive in any order.
//!
//! Admission ([`crate::admission`]) still gates everything, but the shape
//! changed with the reactor: connections are only shed at the configured
//! connection bound (there is no handler pool to saturate — idle sockets
//! park), and the in-flight request semaphore bounds work across all
//! sockets. Shed work is answered with a typed `Busy` frame, never a
//! hang. Frames parked in a v1 connection's in-order queue are
//! admission-checked when their turn comes — not at arrival — matching
//! the pre-reactor server, which only read a pipelined frame when the
//! previous reply had been written.
//!
//! Shutdown is graceful from either direction — a `Shutdown` frame or
//! [`ServerHandle::shutdown`] (which the CLI wires to SIGINT): the
//! reactor stops accepting and reading, in-flight batches complete and
//! their responses are flushed (bounded by a drain deadline), and
//! `shutdown` joins the reactor and every worker before returning, so
//! the process can unmap the index file cleanly.

use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use qbs_core::wire::RequestId;
use qbs_core::{Qbs, QueryMode, QueryOutcome, QueryRequest};

use crate::admission::{Admission, AdmissionConfig, AdmissionStats, OwnedInflightGuard};
use crate::poll::{self, PollFd, WakePipe, POLLIN, POLLOUT};
use crate::protocol::{
    self, fault_code, ProtocolError, RequestFrame, ResponseFrame, ServerStats, WireFault,
    MAX_FRAME_LEN, PREAMBLE_LEN, PROTOCOL_MAGIC,
};

/// Reactor poll timeout — the backstop cadence for shutdown-flag checks
/// and linger deadlines when no I/O or wake arrives.
const POLL_TIMEOUT_MS: i32 = 100;

/// How often [`ServerHandle::wait`] re-checks the shutdown latch.
const WAIT_POLL: Duration = Duration::from_millis(100);

/// Size of the reactor's shared read scratch buffer.
const READ_CHUNK: usize = 64 * 1024;

/// Largest batch the reactor executes inline instead of dispatching to
/// the worker pool. Pipelined single-request frames arrive one per reply
/// in steady state; routing each through a worker costs two context
/// switches per request — more than the query itself on small graphs.
/// Only `Distance`-mode requests qualify: they are the microsecond fast
/// path, while a path-graph or sketch query on a large graph could add
/// head-of-line latency to every connection the reactor serves.
const INLINE_BATCH_MAX: usize = 1;

/// How long the listener sits out of the poll set after a transient
/// accept failure (EMFILE under a connection flood, ...). The listener
/// fd stays readable until the backlog drains, so re-polling it
/// immediately would spin the reactor at 100% CPU; a short pause turns
/// that into a bounded retry cadence.
const ACCEPT_BACKOFF: Duration = Duration::from_millis(100);

/// v1 read backpressure: once this many frames are parked behind a v1
/// connection's executing batch, the reactor stops reading that socket
/// until the queue shrinks. The pre-reactor server got the same bound
/// for free from the kernel socket buffer (it only read one frame at a
/// time); without a cap a pipelining v1 client could balloon the
/// decoded-frame queue without ever tripping admission.
const V1_PENDING_MAX: usize = 32;

/// How long a faulted connection lingers (draining the peer's bytes so
/// the queued fault frame survives the close) before being dropped.
const FAULT_LINGER: Duration = Duration::from_millis(500);

/// How long shutdown waits for a connection to flush its in-flight
/// responses before force-dropping it.
const SHUTDOWN_LINGER: Duration = Duration::from_secs(5);

/// Configuration of a [`QbsServer`] — built fluently and shared by the
/// CLI, tests and benches:
///
/// ```
/// use qbs_server::ServerConfig;
/// let config = ServerConfig::bind("127.0.0.1:0").workers(8).max_batch(256);
/// ```
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (see
    /// [`ServerHandle::local_addr`]).
    pub addr: String,
    /// Worker threads executing admitted batches. This bounds concurrent
    /// *execution*, not connections — the reactor parks any number of
    /// idle sockets (up to [`AdmissionConfig::max_connections`]) without
    /// consuming a thread.
    pub workers: usize,
    /// Admission bounds (in-flight requests, batch size, connections).
    pub admission: AdmissionConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            admission: AdmissionConfig::default(),
        }
    }
}

impl ServerConfig {
    /// Starts a config bound to `addr` (the rest defaulted).
    pub fn bind(addr: impl Into<String>) -> ServerConfig {
        ServerConfig {
            addr: addr.into(),
            ..ServerConfig::default()
        }
    }

    /// Sets the worker-pool size (clamped to at least 1 at start).
    pub fn workers(mut self, workers: usize) -> ServerConfig {
        self.workers = workers;
        self
    }

    /// Replaces the whole admission configuration.
    pub fn admission(mut self, admission: AdmissionConfig) -> ServerConfig {
        self.admission = admission;
        self
    }

    /// Sets the in-flight request bound.
    pub fn max_inflight(mut self, max_inflight: usize) -> ServerConfig {
        self.admission.max_inflight = max_inflight;
        self
    }

    /// Sets the per-batch request cap.
    pub fn max_batch(mut self, max_batch: usize) -> ServerConfig {
        self.admission.max_batch = max_batch;
        self
    }

    /// Sets the served-connection bound.
    pub fn max_connections(mut self, max_connections: usize) -> ServerConfig {
        self.admission.max_connections = max_connections;
        self
    }
}

/// The shutdown latch shared by the reactor, the workers, and external
/// triggers (the CLI's SIGINT handler, the `Shutdown` protocol frame).
/// The reactor polls with a bounded timeout against this flag, so a
/// trigger never depends on being able to dial the server's own address.
#[derive(Debug)]
pub struct ShutdownSignal {
    flag: AtomicBool,
}

impl ShutdownSignal {
    /// Whether shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }

    /// Requests shutdown. Idempotent; observed by the reactor within its
    /// poll timeout.
    pub fn trigger(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }
}

/// What the reactor serves: the thing that turns an admitted batch into
/// outcomes. [`Qbs`] is the canonical backend (a replica serving one
/// mmap'd index); the routing tier implements this over a replica pool,
/// reusing the whole reactor — handshake, admission, pipelining,
/// drain — unchanged.
pub trait ServeBackend: Send + Sync + std::fmt::Debug + 'static {
    /// Executes a batch, one outcome per request slot.
    fn execute(&self, requests: &[QueryRequest]) -> Vec<QueryOutcome>;

    /// Builds the `Stats` response around the server's own admission
    /// snapshot.
    fn server_stats(&self, admission: AdmissionStats) -> ServerStats;

    /// Whether single-request `Distance` frames may execute inline on the
    /// reactor thread. Only a backend whose fast path is genuinely
    /// microsecond-scale (a local index) should say yes; a backend that
    /// performs I/O (the router's replica round-trip) must say no, or one
    /// slow call would add head-of-line latency to every connection.
    fn inline_eligible(&self) -> bool {
        false
    }

    /// Whether `Stats` frames may be answered inline on the reactor
    /// thread. Same I/O caveat as [`ServeBackend::inline_eligible`]: the
    /// router gathers stats from every replica over the network, so it
    /// answers on a worker instead.
    fn stats_inline(&self) -> bool {
        false
    }
}

impl ServeBackend for Qbs {
    fn execute(&self, requests: &[QueryRequest]) -> Vec<QueryOutcome> {
        self.submit(requests)
    }

    fn server_stats(&self, admission: AdmissionStats) -> ServerStats {
        ServerStats {
            engine: self.engine_stats(),
            admission,
            router: None,
        }
    }

    fn inline_eligible(&self) -> bool {
        true
    }

    fn stats_inline(&self) -> bool {
        true
    }
}

/// Namespace for starting servers (see [`QbsServer::start`]).
pub struct QbsServer;

impl QbsServer {
    /// Binds `config.addr` and starts serving `qbs` — returns immediately
    /// with a handle owning the reactor and worker threads.
    pub fn start(qbs: Arc<Qbs>, config: ServerConfig) -> std::io::Result<ServerHandle> {
        QbsServer::start_with_backend(qbs, config)
    }

    /// Binds `config.addr` and starts serving an arbitrary
    /// [`ServeBackend`] — the generalisation the `qbs-router` crate
    /// builds on. Everything protocol-facing (handshake, framing,
    /// admission, pipelining, graceful drain) is identical to
    /// [`QbsServer::start`].
    pub fn start_with_backend(
        backend: Arc<dyn ServeBackend>,
        config: ServerConfig,
    ) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let signal = Arc::new(ShutdownSignal {
            flag: AtomicBool::new(false),
        });
        let admission = Arc::new(Admission::new(config.admission));
        let wake = Arc::new(WakePipe::new()?);
        let completions: Arc<Mutex<Vec<Completion>>> = Arc::new(Mutex::new(Vec::new()));
        let worker_count = config.workers.max(1);
        let (jobs_tx, jobs_rx) = mpsc::channel::<Job>();
        let jobs_rx = Arc::new(Mutex::new(jobs_rx));

        let workers: Vec<JoinHandle<()>> = (0..worker_count)
            .map(|i| {
                let backend = Arc::clone(&backend);
                let admission = Arc::clone(&admission);
                let rx = Arc::clone(&jobs_rx);
                let completions = Arc::clone(&completions);
                let wake = Arc::clone(&wake);
                std::thread::Builder::new()
                    .name(format!("qbs-worker-{i}"))
                    .spawn(move || worker_loop(&*backend, &admission, &rx, &completions, &wake))
                    .expect("spawn worker thread")
            })
            .collect();

        let reactor = {
            let backend = Arc::clone(&backend);
            let admission = Arc::clone(&admission);
            let signal = Arc::clone(&signal);
            let wake = Arc::clone(&wake);
            let completions = Arc::clone(&completions);
            std::thread::Builder::new()
                .name("qbs-reactor".to_string())
                .spawn(move || {
                    reactor_loop(
                        listener,
                        &*backend,
                        &admission,
                        &signal,
                        &wake,
                        &completions,
                        jobs_tx,
                    )
                })
                .expect("spawn reactor thread")
        };

        Ok(ServerHandle {
            addr,
            signal,
            admission,
            backend,
            wake,
            reactor: Some(reactor),
            workers,
        })
    }
}

/// A running server: owns its threads, joins them on
/// [`ServerHandle::shutdown`] or drop.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    signal: Arc<ShutdownSignal>,
    admission: Arc<Admission>,
    backend: Arc<dyn ServeBackend>,
    wake: Arc<WakePipe>,
    reactor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shutdown latch — share it with a signal handler or watchdog;
    /// [`ShutdownSignal::trigger`] from anywhere initiates the same
    /// graceful drain as a `Shutdown` protocol frame.
    pub fn signal(&self) -> Arc<ShutdownSignal> {
        Arc::clone(&self.signal)
    }

    /// The served backend (shared with every worker).
    pub fn backend(&self) -> &Arc<dyn ServeBackend> {
        &self.backend
    }

    /// Number of reactor threads — always exactly 1, independent of how
    /// many connections are parked (the bench artifact records this).
    pub fn reactor_threads(&self) -> usize {
        1
    }

    /// Number of worker threads executing batches.
    pub fn worker_threads(&self) -> usize {
        self.workers.len()
    }

    /// A snapshot of the server's serving + admission counters — the same
    /// value a `Stats` protocol frame returns.
    pub fn stats(&self) -> ServerStats {
        self.backend.server_stats(self.admission.stats())
    }

    /// Triggers shutdown (idempotent), drains in-flight batches, joins the
    /// reactor and every worker, and returns once the server is fully
    /// torn down — after this the process holds no serving threads and can
    /// drop the session (unmapping the index) safely.
    pub fn shutdown(&mut self) {
        self.signal.trigger();
        self.wake.wake();
        if let Some(reactor) = self.reactor.take() {
            let _ = reactor.join();
        }
        // The reactor owned the job sender; with it joined, workers drain
        // the queued jobs and exit their recv loop.
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // All workers are joined, so this returns immediately; it is the
        // documented invariant (no in-flight work survives shutdown).
        self.admission.drain();
    }

    /// Blocks until the shutdown latch flips (a `Shutdown` frame arrived
    /// or [`ShutdownSignal::trigger`] was called elsewhere), then tears the
    /// server down as [`ServerHandle::shutdown`] does.
    pub fn wait(mut self) {
        while !self.signal.is_shutdown() {
            std::thread::sleep(WAIT_POLL);
        }
        self.shutdown();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A unit of work travelling from the reactor to a worker.
struct Job {
    token: u64,
    id: RequestId,
    version: u16,
    kind: JobKind,
}

/// What a worker does with a [`Job`]. Batches always run here; `Stats`
/// runs here only for backends whose snapshot performs I/O (the router
/// polls every replica) — see [`ServeBackend::stats_inline`].
enum JobKind {
    /// An admitted batch, carrying its admission permit.
    Batch {
        requests: Vec<QueryRequest>,
        permit: OwnedInflightGuard,
    },
    /// A `Stats` request the backend answers off-reactor.
    Stats,
}

/// An encoded response travelling back from a worker to the reactor.
struct Completion {
    token: u64,
    bytes: Vec<u8>,
    /// Close the connection after flushing (v1 over-cap downgrade —
    /// the request/response rhythm is broken even though framing holds).
    close: bool,
}

/// Worker thread body: execute jobs, encode, hand back, wake.
fn worker_loop(
    backend: &dyn ServeBackend,
    admission: &Admission,
    rx: &Mutex<Receiver<Job>>,
    completions: &Mutex<Vec<Completion>>,
    wake: &WakePipe,
) {
    loop {
        let job = {
            let rx = rx.lock().expect("job channel poisoned");
            rx.recv()
        };
        let Ok(job) = job else {
            break; // reactor gone, queue drained
        };
        let frame = match job.kind {
            JobKind::Batch { requests, permit } => {
                let outcomes = backend.execute(&requests);
                // Release the permits before the response is queued —
                // execution is what the in-flight bound meters, exactly
                // as before.
                drop(permit);
                ResponseFrame::Batch(outcomes)
            }
            JobKind::Stats => ResponseFrame::Stats(backend.server_stats(admission.stats())),
        };
        let (bytes, close) = wire_response(job.version, job.id, &frame);
        completions
            .lock()
            .expect("completion queue poisoned")
            .push(Completion {
                token: job.token,
                bytes,
                close,
            });
        wake.wake();
    }
}

/// Encodes a response frame into on-the-wire bytes (length prefix
/// included) for a connection speaking `version`. A response that encodes
/// past the frame cap (a huge admitted batch of path-graph answers) is
/// downgraded to a typed `Error` — under v2 it carries the request's ID
/// and the connection survives (the client sees code 4 for that ticket
/// and can split the batch); under v1 the connection is closed after the
/// fault, exactly as the pre-reactor server did.
fn wire_response(version: u16, id: RequestId, frame: &ResponseFrame) -> (Vec<u8>, bool) {
    let body = frame.encode_body();
    let payload = if version >= 2 {
        protocol::encode_envelope(id, &body)
    } else {
        body
    };
    if payload.len() > MAX_FRAME_LEN as usize {
        let fault = ResponseFrame::Error(WireFault {
            code: fault_code::FRAME_TOO_LARGE,
            message: format!(
                "encoded response ({} bytes) exceeds the {MAX_FRAME_LEN}-byte frame cap; \
                 split the batch",
                payload.len()
            ),
        });
        let fault_body = fault.encode_body();
        let fault_payload = if version >= 2 {
            protocol::encode_envelope(id, &fault_body)
        } else {
            fault_body
        };
        return (frame_bytes(&fault_payload), version < 2);
    }
    (frame_bytes(&payload), false)
}

/// Prepends the length prefix.
fn frame_bytes(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// What the reactor still does with a connection's inbound bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ReadMode {
    /// Parsing frames normally.
    Frames,
    /// Consuming and discarding (a fault is queued; draining the peer so
    /// the close cannot reset the unread fault frame).
    Discard,
    /// Not reading (peer EOF, or server shutdown).
    Stopped,
}

/// Per-connection reactor state.
struct Conn {
    stream: TcpStream,
    _guard: crate::admission::OwnedConnectionGuard,
    /// Negotiated protocol version; `None` until the client's preamble
    /// arrives.
    version: Option<u16>,
    /// Unparsed inbound bytes.
    rbuf: Vec<u8>,
    /// Outbound frames; the front may be partially written.
    wbuf: VecDeque<Vec<u8>>,
    /// Write offset into the front of `wbuf`.
    woff: usize,
    /// Jobs dispatched to workers and not yet completed.
    inflight: usize,
    /// v1 in-order queue (empty for v2 connections): frames parked
    /// behind an executing batch, admission-checked only when their turn
    /// comes — the pre-reactor server's exact rhythm, where a pipelined
    /// frame sat unread in the kernel buffer until the handler's next
    /// read. No permits are held by queued frames.
    pending: VecDeque<RequestFrame>,
    mode: ReadMode,
    /// Finish outstanding work, flush, then close.
    closing: bool,
    /// Force-drop time once closing (fault linger / shutdown drain).
    deadline: Option<Instant>,
    /// Socket error or final close decision — reap this connection.
    dead: bool,
}

impl Conn {
    fn new(stream: TcpStream, guard: crate::admission::OwnedConnectionGuard) -> Conn {
        Conn {
            stream,
            _guard: guard,
            version: None,
            rbuf: Vec::new(),
            wbuf: VecDeque::new(),
            woff: 0,
            inflight: 0,
            pending: VecDeque::new(),
            mode: ReadMode::Frames,
            closing: false,
            deadline: None,
            dead: false,
        }
    }

    /// Whether every queued and in-flight piece of work has been written.
    fn flushed(&self) -> bool {
        self.wbuf.is_empty() && self.inflight == 0 && self.pending.is_empty()
    }

    /// Queues a fatal fault: the frame goes out, inbound bytes are
    /// drained (not parsed) for a bounded linger, then the socket closes.
    /// Queued v1 frames are discarded — the stream's request/response
    /// rhythm is broken, so their replies could never be paired (and a
    /// non-empty queue would keep `flushed` false past the linger).
    fn fault_close(&mut self, bytes: Vec<u8>) {
        self.wbuf.push_back(bytes);
        self.pending.clear();
        self.mode = ReadMode::Discard;
        self.closing = true;
        self.deadline = Some(Instant::now() + FAULT_LINGER);
    }
}

/// Immutable context shared by the reactor's helper functions.
struct Ctx<'a> {
    backend: &'a dyn ServeBackend,
    admission: &'a Arc<Admission>,
    signal: &'a ShutdownSignal,
    jobs: &'a Sender<Job>,
}

/// The reactor thread body.
#[allow(clippy::too_many_arguments)]
fn reactor_loop(
    listener: TcpListener,
    backend: &dyn ServeBackend,
    admission: &Arc<Admission>,
    signal: &ShutdownSignal,
    wake: &WakePipe,
    completions: &Mutex<Vec<Completion>>,
    jobs: Sender<Job>,
) {
    let ctx = Ctx {
        backend,
        admission,
        signal,
        jobs: &jobs,
    };
    let shed_threads = Arc::new(AtomicUsize::new(0));
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_token: u64 = 0;
    let mut dispatched: usize = 0;
    let mut scratch = vec![0u8; READ_CHUNK];
    let mut shutdown_seen = false;
    let mut accept_pause: Option<Instant> = None;
    let listener_fd = poll::listener_fd(&listener);

    loop {
        if signal.is_shutdown() && !shutdown_seen {
            shutdown_seen = true;
            // Stop reading everywhere; outstanding work flushes under a
            // bounded drain deadline.
            let deadline = Instant::now() + SHUTDOWN_LINGER;
            for conn in conns.values_mut() {
                conn.mode = ReadMode::Stopped;
                conn.closing = true;
                let conn_deadline = conn.deadline.get_or_insert(deadline);
                *conn_deadline = (*conn_deadline).min(deadline);
            }
        }
        if shutdown_seen && conns.is_empty() && dispatched == 0 {
            break;
        }

        // Build the poll set: wake pipe, listener (while accepting), then
        // one entry per connection, aligned with `order`.
        let mut fds = Vec::with_capacity(2 + conns.len());
        fds.push(wake.poll_fd());
        // During an accept backoff the listener is left out of the poll
        // set entirely: its fd stays readable while the backlog is
        // nonempty, so polling it before the pause expires would return
        // instantly and spin.
        let accept_paused = accept_pause.is_some_and(|until| Instant::now() < until);
        let listener_slot = if shutdown_seen || accept_paused {
            None
        } else {
            accept_pause = None;
            fds.push(PollFd::new(listener_fd, POLLIN));
            Some(1)
        };
        let base = fds.len();
        let order: Vec<u64> = conns.keys().copied().collect();
        for token in &order {
            let conn = &conns[token];
            let mut events = 0i16;
            // Backpressure: a v1 connection with a deep pending queue is
            // not read further until completions drain it (its unread
            // bytes wait in the kernel buffer, as they did pre-reactor).
            if conn.mode != ReadMode::Stopped && conn.pending.len() < V1_PENDING_MAX {
                events |= POLLIN;
            }
            if !conn.wbuf.is_empty() {
                events |= POLLOUT;
            }
            fds.push(PollFd::new(poll::stream_fd(&conn.stream), events));
        }

        if poll::poll(&mut fds, POLL_TIMEOUT_MS).is_err() {
            // EBADF and friends are reactor bugs; back off rather than
            // spin so the process stays debuggable.
            std::thread::sleep(Duration::from_millis(10));
        }

        if fds[0].readable() {
            wake.drain();
        }

        // Out-of-order completions: enqueue each response on its
        // connection and try to write it immediately.
        let done: Vec<Completion> = {
            let mut queue = completions.lock().expect("completion queue poisoned");
            std::mem::take(&mut *queue)
        };
        for completion in done {
            dispatched -= 1;
            let Some(conn) = conns.get_mut(&completion.token) else {
                continue; // connection died while the batch executed
            };
            conn.inflight -= 1;
            conn.wbuf.push_back(completion.bytes);
            if completion.close {
                conn.pending.clear();
                conn.mode = ReadMode::Discard;
                conn.closing = true;
                conn.deadline = Some(Instant::now() + FAULT_LINGER);
            }
            // A v1 connection runs one batch at a time: its completion
            // unblocks the next queued unit(s).
            advance_pending(&ctx, conn, completion.token, &mut dispatched);
            conn_write(conn);
        }

        if let Some(slot) = listener_slot {
            if fds[slot].readable() {
                accept_pause =
                    accept_new(&listener, &ctx, &shed_threads, &mut conns, &mut next_token);
            }
        }

        for (i, token) in order.iter().enumerate() {
            let Some(conn) = conns.get_mut(token) else {
                continue;
            };
            let fd = fds[base + i];
            if fd.readable() && conn.mode != ReadMode::Stopped {
                conn_read(&ctx, conn, *token, &mut scratch, &mut dispatched);
            }
            if fd.writable() && !conn.wbuf.is_empty() {
                conn_write(conn);
            }
        }

        // Reap finished and expired connections.
        let now = Instant::now();
        conns.retain(|_, conn| {
            if conn.dead {
                return false;
            }
            if conn.closing && conn.flushed() {
                // Everything delivered. For Discard-mode (faulted)
                // connections the periodic read path has been draining
                // the peer; with the write queue empty the close is now
                // an orderly FIN.
                let _ = conn.stream.shutdown(std::net::Shutdown::Write);
                return false;
            }
            if let Some(deadline) = conn.deadline {
                if now >= deadline {
                    return false; // drain budget exhausted: force drop
                }
            }
            true
        });
    }
}

/// Accepts every connection the backlog holds; admits or sheds each.
/// Returns the instant until which the reactor should stop polling the
/// listener (set after a transient accept error such as EMFILE — the fd
/// stays readable, so an immediate re-poll would spin).
fn accept_new(
    listener: &TcpListener,
    ctx: &Ctx<'_>,
    shed_threads: &Arc<AtomicUsize>,
    conns: &mut HashMap<u64, Conn>,
    next_token: &mut u64,
) -> Option<Instant> {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _peer)) => stream,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            // Transient (EMFILE under a connection flood, ...): back the
            // listener off for a beat, then retry — never spin.
            Err(_) => return Some(Instant::now() + ACCEPT_BACKOFF),
        };
        if stream.set_nonblocking(true).is_err() {
            continue;
        }
        stream.set_nodelay(true).ok();
        match ctx.admission.admit_connection_owned() {
            Ok(guard) => {
                *next_token += 1;
                conns.insert(*next_token, Conn::new(stream, guard));
            }
            Err(reason) => shed_detached(shed_threads, stream, ResponseFrame::Busy(reason)),
        }
    }
    None
}

/// Nonblocking read pump: pull bytes, then parse what accumulated.
fn conn_read(
    ctx: &Ctx<'_>,
    conn: &mut Conn,
    token: u64,
    scratch: &mut [u8],
    dispatched: &mut usize,
) {
    loop {
        match conn.stream.read(scratch) {
            Ok(0) => {
                // Peer finished sending. Keep the connection until its
                // outstanding responses flush (a pipelining client may
                // half-close after its last request), then close. The
                // deadline is a backstop, not the expected path: it
                // guarantees the connection is reaped — releasing its
                // slot and any queued work — even if the flush stalls,
                // and bounds the instant-wakeup poll ticks a fully
                // closed peer's POLLHUP would otherwise cause forever.
                conn.mode = ReadMode::Stopped;
                conn.closing = true;
                conn.deadline
                    .get_or_insert(Instant::now() + SHUTDOWN_LINGER);
                break;
            }
            Ok(n) => {
                if conn.mode == ReadMode::Frames {
                    conn.rbuf.extend_from_slice(&scratch[..n]);
                    process_rbuf(ctx, conn, token, dispatched);
                }
                // Discard mode: bytes vanish; the linger deadline bounds
                // how long a firehosing peer keeps the socket alive.
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                break;
            }
        }
        if conn.mode == ReadMode::Stopped {
            break;
        }
    }
}

/// Parses everything complete in the read buffer: the handshake first,
/// then frames.
fn process_rbuf(ctx: &Ctx<'_>, conn: &mut Conn, token: u64, dispatched: &mut usize) {
    if conn.version.is_none() {
        if conn.rbuf.len() < PREAMBLE_LEN {
            return;
        }
        let magic: [u8; 4] = conn.rbuf[..4].try_into().expect("fixed split");
        if magic != PROTOCOL_MAGIC {
            // The byte stream cannot be trusted for framing; close.
            conn.dead = true;
            return;
        }
        let theirs = u16::from_le_bytes([conn.rbuf[4], conn.rbuf[5]]);
        conn.rbuf.drain(..PREAMBLE_LEN);
        match protocol::negotiate(theirs) {
            Some(version) => {
                let mut preamble = Vec::with_capacity(PREAMBLE_LEN);
                let _ = protocol::write_preamble_version(&mut preamble, version);
                conn.wbuf.push_back(preamble);
                conn.version = Some(version);
            }
            None => {
                // A version-0 peer predates every build; answer with our
                // preamble and a v1-framed typed fault, then close.
                let mut reply = Vec::new();
                let _ = protocol::write_preamble(&mut reply);
                conn.wbuf.push_back(reply);
                let fault = ResponseFrame::Error(WireFault {
                    code: fault_code::VERSION_MISMATCH,
                    message: format!(
                        "server speaks versions {}..={}, client sent {theirs}",
                        protocol::MIN_PROTOCOL_VERSION,
                        protocol::PROTOCOL_VERSION
                    ),
                });
                let (bytes, _) = wire_response(1, RequestId::CONNECTION, &fault);
                conn.fault_close(bytes);
                return;
            }
        }
    }
    let version = conn.version.expect("handshake complete");

    while conn.mode == ReadMode::Frames {
        if conn.rbuf.len() < 4 {
            return;
        }
        let len = u32::from_le_bytes(conn.rbuf[..4].try_into().expect("fixed split"));
        if len > MAX_FRAME_LEN {
            let fault = ResponseFrame::Error(WireFault {
                code: fault_code::FRAME_TOO_LARGE,
                message: format!("frame length {len} exceeds the cap"),
            });
            let (bytes, _) = wire_response(version, RequestId::CONNECTION, &fault);
            conn.fault_close(bytes);
            return;
        }
        let total = 4 + len as usize;
        if conn.rbuf.len() < total {
            return;
        }
        let payload: Vec<u8> = conn.rbuf[4..total].to_vec();
        conn.rbuf.drain(..total);
        handle_frame(ctx, conn, token, version, &payload, dispatched);
    }
}

/// Decodes and dispatches one complete frame payload.
fn handle_frame(
    ctx: &Ctx<'_>,
    conn: &mut Conn,
    token: u64,
    version: u16,
    payload: &[u8],
    dispatched: &mut usize,
) {
    let (id, body) = if version >= 2 {
        match protocol::split_envelope(payload) {
            Ok((id, body)) if !id.is_connection_scoped() => (id, body),
            // A truncated envelope (or the reserved ID) breaks the
            // request/response pairing: connection-scoped fault.
            _ => {
                let fault = ResponseFrame::Error(WireFault {
                    code: fault_code::MALFORMED,
                    message: "v2 frame carried no usable request id".to_string(),
                });
                let (bytes, _) = wire_response(version, RequestId::CONNECTION, &fault);
                conn.fault_close(bytes);
                return;
            }
        }
    } else {
        (RequestId::CONNECTION, payload)
    };

    let frame = match RequestFrame::decode_body(body) {
        Ok(frame) => frame,
        Err(err) => {
            let fault = match &err {
                ProtocolError::UnknownTag(tag) => WireFault {
                    code: fault_code::UNKNOWN_TAG,
                    message: format!("unknown request tag {tag:#04x}"),
                },
                other => WireFault {
                    code: fault_code::MALFORMED,
                    message: other.to_string(),
                },
            };
            if version >= 2 {
                // Framing is intact (the length prefix consumed the whole
                // frame): fault the request, keep the connection.
                queue_reply(conn, version, id, &ResponseFrame::Error(fault));
            } else {
                let (bytes, _) = wire_response(version, id, &ResponseFrame::Error(fault));
                conn.fault_close(bytes);
            }
            return;
        }
    };

    // v1 connections are strictly ordered: while a batch is outstanding,
    // everything (further batches, control frames) queues behind it.
    // Admission runs when the frame's turn comes (`advance_pending`),
    // not at arrival — exactly when the pre-reactor blocking server
    // would have checked it — so a queued batch holds no permits while
    // it merely waits, and a shed decision reflects the load at
    // dispatch time rather than a snapshot frozen at arrival.
    if version < 2 && (conn.inflight > 0 || !conn.pending.is_empty()) {
        conn.pending.push_back(frame);
        return;
    }

    execute_frame(ctx, conn, token, version, id, frame, dispatched);
}

/// Executes a frame now: control frames inline, batches to the workers.
fn execute_frame(
    ctx: &Ctx<'_>,
    conn: &mut Conn,
    token: u64,
    version: u16,
    id: RequestId,
    frame: RequestFrame,
    dispatched: &mut usize,
) {
    match frame {
        RequestFrame::Batch(requests) => match ctx.admission.admit_batch_owned(requests.len()) {
            Ok(permit) => {
                // Single-request Distance frames execute inline on the
                // reactor: a pipelined stream of tiny frames arrives one
                // per reply in steady state, and bouncing each one through
                // the worker pool costs two context switches per request —
                // more than the query itself. Anything larger, and any
                // non-Distance mode (path-graph/sketch materialisation can
                // be arbitrarily heavy on a large graph), still goes to
                // the workers so one slow query can't add head-of-line
                // latency to every other connection's I/O.
                if ctx.backend.inline_eligible()
                    && requests.len() <= INLINE_BATCH_MAX
                    && requests.iter().all(|r| r.mode == QueryMode::Distance)
                {
                    let outcomes = ctx.backend.execute(&requests);
                    drop(permit);
                    let frame = ResponseFrame::Batch(outcomes);
                    queue_reply(conn, version, id, &frame);
                    return;
                }
                conn.inflight += 1;
                *dispatched += 1;
                let _ = ctx.jobs.send(Job {
                    token,
                    id,
                    version,
                    kind: JobKind::Batch { requests, permit },
                });
            }
            Err(reason) => queue_reply(conn, version, id, &ResponseFrame::Busy(reason)),
        },
        RequestFrame::Stats => {
            if ctx.backend.stats_inline() {
                let stats = ctx.backend.server_stats(ctx.admission.stats());
                queue_reply(conn, version, id, &ResponseFrame::Stats(stats));
            } else {
                // The backend's snapshot performs I/O (the router rounds
                // up every replica): answer it on a worker so the reactor
                // never blocks on the network.
                conn.inflight += 1;
                *dispatched += 1;
                let _ = ctx.jobs.send(Job {
                    token,
                    id,
                    version,
                    kind: JobKind::Stats,
                });
            }
        }
        RequestFrame::Ping => queue_reply(conn, version, id, &ResponseFrame::Pong),
        RequestFrame::Shutdown => {
            // Flip the latch before acking, so a client that saw the ack
            // can rely on the drain having begun. Frames the client
            // pipelined behind the Shutdown are dropped, as the old
            // server (which closed right after the ack) never read them.
            ctx.signal.trigger();
            queue_reply(conn, version, id, &ResponseFrame::ShutdownAck);
            conn.pending.clear();
            conn.mode = ReadMode::Stopped;
            conn.closing = true;
        }
    }
}

/// After a v1 batch completes, admit and run queued frames in order until
/// one dispatches to the workers (at most one executes at a time) or the
/// queue empties.
///
/// `ReadMode::Stopped` does NOT stop the drain: it only means no further
/// bytes are read. Frames already queued were fully received before the
/// EOF / shutdown and still get their replies — a pipelining client may
/// half-close after its last request — and draining them is also what
/// lets `Conn::flushed` become true so the connection is reaped instead
/// of parked forever. `Discard` mode does stop it (framing broke; the
/// fault path already cleared the queue), as does a dead socket.
fn advance_pending(ctx: &Ctx<'_>, conn: &mut Conn, token: u64, dispatched: &mut usize) {
    let version = conn.version.unwrap_or(1);
    while conn.inflight == 0 && conn.mode != ReadMode::Discard && !conn.dead {
        let Some(frame) = conn.pending.pop_front() else {
            break;
        };
        execute_frame(
            ctx,
            conn,
            token,
            version,
            RequestId::CONNECTION,
            frame,
            dispatched,
        );
    }
}

/// Encodes a reply and queues it (the next write flush sends it).
fn queue_reply(conn: &mut Conn, version: u16, id: RequestId, frame: &ResponseFrame) {
    let (bytes, close) = wire_response(version, id, frame);
    conn.wbuf.push_back(bytes);
    if close {
        // v1 over-cap downgrade: the request/response rhythm is broken,
        // so queued frames can never be answered pairably — drop them
        // and close once the fault frame flushes.
        conn.pending.clear();
        conn.mode = ReadMode::Discard;
        conn.closing = true;
        conn.deadline = Some(Instant::now() + FAULT_LINGER);
    }
}

/// Nonblocking write pump: flush the queue until it empties or the
/// socket's send buffer fills.
fn conn_write(conn: &mut Conn) {
    while let Some(front) = conn.wbuf.front() {
        match conn.stream.write(&front[conn.woff..]) {
            Ok(0) => {
                conn.dead = true;
                return;
            }
            Ok(n) => {
                conn.woff += n;
                if conn.woff >= front.len() {
                    conn.wbuf.pop_front();
                    conn.woff = 0;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                return;
            }
        }
    }
    let _ = conn.stream.flush();
}

/// Cap on concurrent shed-refusal threads; refusals beyond it are dropped
/// outright (plain close) — under a flood, bounded resources beat
/// delivering every courtesy reply.
const MAX_SHED_THREADS: usize = 8;

/// Sheds a refused connection on a bounded helper thread. `refuse` paces
/// at the client's speed (preamble drain + linger), so it must never run
/// on the reactor thread.
fn shed_detached(shed_threads: &Arc<AtomicUsize>, stream: TcpStream, frame: ResponseFrame) {
    if shed_threads.fetch_add(1, Ordering::SeqCst) >= MAX_SHED_THREADS {
        shed_threads.fetch_sub(1, Ordering::SeqCst);
        return; // flood regime: close without the courtesy frame
    }
    let counter = Arc::clone(shed_threads);
    let spawned = std::thread::Builder::new()
        .name("qbs-shed".into())
        .spawn(move || {
            refuse(stream, frame);
            counter.fetch_sub(1, Ordering::SeqCst);
        });
    if spawned.is_err() {
        // Spawn failure (resource exhaustion): the stream was dropped with
        // the unrun closure; release the slot it claimed.
        shed_threads.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Refuses a connection with one typed response frame, with short timeouts
/// so a slow client cannot stall the helper. The client's own preamble is
/// drained first — and its announced version honoured in the reply, so v1
/// clients decode the refusal too — and the close lingers, so the refusal
/// is delivered as orderly data + FIN, never lost to a reset.
fn refuse(mut stream: TcpStream, frame: ResponseFrame) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
    let mut hello = [0u8; PREAMBLE_LEN];
    let version = match Read::read_exact(&mut stream, &mut hello) {
        Ok(()) if hello[..4] == PROTOCOL_MAGIC => {
            protocol::negotiate(u16::from_le_bytes([hello[4], hello[5]]))
                .unwrap_or(protocol::MIN_PROTOCOL_VERSION)
        }
        // Garbage or truncated hello: best-effort v1-style refusal.
        _ => protocol::MIN_PROTOCOL_VERSION,
    };
    let _ = protocol::write_preamble_version(&mut stream, version);
    let (bytes, _) = wire_response(version, RequestId::CONNECTION, &frame);
    let _ = stream.write_all(&bytes);
    linger_close(stream);
}

/// Half-closes the write side and drains whatever the client still sends,
/// so a close after a queued reply can never turn into a TCP reset that
/// destroys the un-read reply. The drain is bounded by a hard deadline
/// (not just per-read timeouts): a client uploading forever gets its FIN
/// and then a plain close, it cannot pin the draining thread.
fn linger_close(mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let deadline = Instant::now() + Duration::from_millis(500);
    let mut sink = [0u8; 512];
    while Instant::now() < deadline {
        match Read::read(&mut stream, &mut sink) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
}
