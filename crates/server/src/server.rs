//! The long-running TCP server: one poll(2) reactor thread multiplexing
//! every connection, plus a fixed worker pool over one shared [`Qbs`]
//! session.
//!
//! Architecture (one process, thousands of connections, fixed threads):
//!
//! ```text
//!                 ┌────────────────────────────────────────────┐
//!                 │ reactor thread: poll(2) over listener +    │
//!  accept ──────▶ │ every connection; nonblocking reads decode │
//!                 │ frames, control frames answered inline     │
//!                 └───────┬───────────────────────▲────────────┘
//!                         │ Batch jobs            │ completions (wake pipe)
//!                         ▼                       │
//!                 ┌────────────────────────────────────────────┐
//!                 │ worker pool (W threads): Qbs::submit,      │
//!                 │ encode response, hand bytes back           │
//!                 └────────────────────────────────────────────┘
//! ```
//!
//! The reactor owns all connection state: handshake + version negotiation
//! (v1 peers are served byte-identically to the pre-reactor server, v2
//! peers get pipelined request-ID frames), per-connection read buffers
//! and write queues, and the out-of-order completion path — a worker
//! finishes a batch, pushes the encoded response, and wakes the reactor
//! through [`crate::poll::WakePipe`]; the reactor writes it whenever that
//! socket drains. Idle connections cost one pollfd entry, not a thread.
//!
//! Ordering: v1 connections get strictly in-order replies (one batch
//! executes at a time per connection, control frames queue behind it —
//! exactly the old thread-per-connection rhythm). v2 connections pipeline
//! freely; responses carry the request's ID and may arrive in any order.
//!
//! Admission ([`crate::admission`]) still gates everything, but the shape
//! changed with the reactor: connections are only shed at the configured
//! connection bound (there is no handler pool to saturate — idle sockets
//! park), and the in-flight request semaphore bounds work across all
//! sockets. Shed work is answered with a typed `Busy` frame, never a
//! hang. Frames parked in a v1 connection's in-order queue are
//! admission-checked when their turn comes — not at arrival — matching
//! the pre-reactor server, which only read a pipelined frame when the
//! previous reply had been written.
//!
//! Shutdown is graceful from either direction — a `Shutdown` frame or
//! [`ServerHandle::shutdown`] (which the CLI wires to SIGINT): the
//! reactor stops accepting and reading, in-flight batches complete and
//! their responses are flushed (bounded by a drain deadline), and
//! `shutdown` joins the reactor and every worker before returning, so
//! the process can unmap the index file cleanly.

use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use qbs_core::wire::RequestId;
use qbs_core::{
    Metrics, MetricsSnapshot, Qbs, QueryMode, QueryOutcome, QueryRequest, Stage, StageNanos,
    TraceId,
};

use crate::admission::{Admission, AdmissionConfig, AdmissionStats, OwnedInflightGuard};
use crate::poll::{self, PollFd, WakePipe, POLLIN, POLLOUT};
use crate::protocol::{
    self, fault_code, ProtocolError, RequestFrame, ResponseFrame, ServerStats, WireFault,
    MAX_FRAME_LEN, PREAMBLE_LEN, PROTOCOL_MAGIC,
};

/// Reactor poll timeout — the backstop cadence for shutdown-flag checks
/// and linger deadlines when no I/O or wake arrives.
const POLL_TIMEOUT_MS: i32 = 100;

/// How often [`ServerHandle::wait`] re-checks the shutdown latch.
const WAIT_POLL: Duration = Duration::from_millis(100);

/// Size of the reactor's shared read scratch buffer.
const READ_CHUNK: usize = 64 * 1024;

/// Largest batch the reactor executes inline instead of dispatching to
/// the worker pool. Pipelined single-request frames arrive one per reply
/// in steady state; routing each through a worker costs two context
/// switches per request — more than the query itself on small graphs.
/// Only `Distance`-mode requests qualify: they are the microsecond fast
/// path, while a path-graph or sketch query on a large graph could add
/// head-of-line latency to every connection the reactor serves.
const INLINE_BATCH_MAX: usize = 1;

/// How long the listener sits out of the poll set after a transient
/// accept failure (EMFILE under a connection flood, ...). The listener
/// fd stays readable until the backlog drains, so re-polling it
/// immediately would spin the reactor at 100% CPU; a short pause turns
/// that into a bounded retry cadence.
const ACCEPT_BACKOFF: Duration = Duration::from_millis(100);

/// v1 read backpressure: once this many frames are parked behind a v1
/// connection's executing batch, the reactor stops reading that socket
/// until the queue shrinks. The pre-reactor server got the same bound
/// for free from the kernel socket buffer (it only read one frame at a
/// time); without a cap a pipelining v1 client could balloon the
/// decoded-frame queue without ever tripping admission.
const V1_PENDING_MAX: usize = 32;

/// How long a faulted connection lingers (draining the peer's bytes so
/// the queued fault frame survives the close) before being dropped.
const FAULT_LINGER: Duration = Duration::from_millis(500);

/// How long shutdown waits for a connection to flush its in-flight
/// responses before force-dropping it.
const SHUTDOWN_LINGER: Duration = Duration::from_secs(5);

/// Configuration of a [`QbsServer`] — built fluently and shared by the
/// CLI, tests and benches:
///
/// ```
/// use qbs_server::ServerConfig;
/// let config = ServerConfig::bind("127.0.0.1:0").workers(8).max_batch(256);
/// ```
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (see
    /// [`ServerHandle::local_addr`]).
    pub addr: String,
    /// Worker threads executing admitted batches. This bounds concurrent
    /// *execution*, not connections — the reactor parks any number of
    /// idle sockets (up to [`AdmissionConfig::max_connections`]) without
    /// consuming a thread.
    pub workers: usize,
    /// Admission bounds (in-flight requests, batch size, connections).
    pub admission: AdmissionConfig,
    /// Optional second listener serving Prometheus-style
    /// `GET /metrics` over plain HTTP (an ops port, outside admission).
    pub metrics_addr: Option<String>,
    /// Batches whose execution takes at least this long are written to
    /// the slow-query log (one structured stderr line with the trace ID
    /// and per-stage breakdown). `None` disables the log.
    pub slow_query: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            admission: AdmissionConfig::default(),
            metrics_addr: None,
            slow_query: None,
        }
    }
}

impl ServerConfig {
    /// Starts a config bound to `addr` (the rest defaulted).
    pub fn bind(addr: impl Into<String>) -> ServerConfig {
        ServerConfig {
            addr: addr.into(),
            ..ServerConfig::default()
        }
    }

    /// Sets the worker-pool size (clamped to at least 1 at start).
    pub fn workers(mut self, workers: usize) -> ServerConfig {
        self.workers = workers;
        self
    }

    /// Replaces the whole admission configuration.
    pub fn admission(mut self, admission: AdmissionConfig) -> ServerConfig {
        self.admission = admission;
        self
    }

    /// Sets the in-flight request bound.
    pub fn max_inflight(mut self, max_inflight: usize) -> ServerConfig {
        self.admission.max_inflight = max_inflight;
        self
    }

    /// Sets the per-batch request cap.
    pub fn max_batch(mut self, max_batch: usize) -> ServerConfig {
        self.admission.max_batch = max_batch;
        self
    }

    /// Sets the served-connection bound.
    pub fn max_connections(mut self, max_connections: usize) -> ServerConfig {
        self.admission.max_connections = max_connections;
        self
    }

    /// Serves `GET /metrics` (Prometheus text format) on a second
    /// listener at `addr`.
    pub fn metrics_addr(mut self, addr: impl Into<String>) -> ServerConfig {
        self.metrics_addr = Some(addr.into());
        self
    }

    /// Logs batches whose execution takes at least `threshold` to the
    /// slow-query log on stderr.
    pub fn slow_query(mut self, threshold: Duration) -> ServerConfig {
        self.slow_query = Some(threshold);
        self
    }
}

/// The shutdown latch shared by the reactor, the workers, and external
/// triggers (the CLI's SIGINT handler, the `Shutdown` protocol frame).
/// The reactor polls with a bounded timeout against this flag, so a
/// trigger never depends on being able to dial the server's own address.
#[derive(Debug)]
pub struct ShutdownSignal {
    flag: AtomicBool,
}

impl ShutdownSignal {
    /// Whether shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }

    /// Requests shutdown. Idempotent; observed by the reactor within its
    /// poll timeout.
    pub fn trigger(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }
}

/// What the reactor serves: the thing that turns an admitted batch into
/// outcomes. [`Qbs`] is the canonical backend (a replica serving one
/// mmap'd index); the routing tier implements this over a replica pool,
/// reusing the whole reactor — handshake, admission, pipelining,
/// drain — unchanged.
pub trait ServeBackend: Send + Sync + std::fmt::Debug + 'static {
    /// Executes a batch, one outcome per request slot.
    fn execute(&self, requests: &[QueryRequest]) -> Vec<QueryOutcome>;

    /// Executes a batch under a trace ID, returning the outcomes plus the
    /// batch's aggregate per-stage wall time (all zeros when the backend
    /// does not instrument). The router overrides this to propagate the
    /// trace into its replica sub-batches.
    fn execute_traced(
        &self,
        requests: &[QueryRequest],
        trace: TraceId,
    ) -> (Vec<QueryOutcome>, StageNanos) {
        let _ = trace;
        (self.execute(requests), StageNanos::default())
    }

    /// Builds the `Stats` response around the server's own admission
    /// snapshot.
    fn server_stats(&self, admission: AdmissionStats) -> ServerStats;

    /// Snapshot of the backend's per-stage latency histograms (the
    /// `Metrics` frame's payload). A router answers with the bucket-wise
    /// merge across its replicas plus its own routing-tier stages.
    fn metrics_snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot::default()
    }

    /// Whether `Metrics` frames may be answered inline on the reactor
    /// thread. Same I/O caveat as [`ServeBackend::stats_inline`].
    fn metrics_inline(&self) -> bool {
        true
    }

    /// The live metrics registry, when the backend has one — lets the
    /// serving tier record reactor/worker-side stages (queue wait, wire
    /// encode) into the same histograms the execution stages land in.
    fn obs(&self) -> Option<&Metrics> {
        None
    }

    /// Whether single-request `Distance` frames may execute inline on the
    /// reactor thread. Only a backend whose fast path is genuinely
    /// microsecond-scale (a local index) should say yes; a backend that
    /// performs I/O (the router's replica round-trip) must say no, or one
    /// slow call would add head-of-line latency to every connection.
    fn inline_eligible(&self) -> bool {
        false
    }

    /// Whether `Stats` frames may be answered inline on the reactor
    /// thread. Same I/O caveat as [`ServeBackend::inline_eligible`]: the
    /// router gathers stats from every replica over the network, so it
    /// answers on a worker instead.
    fn stats_inline(&self) -> bool {
        false
    }
}

impl ServeBackend for Qbs {
    fn execute(&self, requests: &[QueryRequest]) -> Vec<QueryOutcome> {
        self.submit(requests)
    }

    fn execute_traced(
        &self,
        requests: &[QueryRequest],
        _trace: TraceId,
    ) -> (Vec<QueryOutcome>, StageNanos) {
        self.submit_observed(requests)
    }

    fn server_stats(&self, admission: AdmissionStats) -> ServerStats {
        ServerStats {
            engine: self.engine_stats(),
            admission,
            router: None,
        }
    }

    fn metrics_snapshot(&self) -> MetricsSnapshot {
        Qbs::metrics_snapshot(self)
    }

    fn obs(&self) -> Option<&Metrics> {
        Some(self.metrics())
    }

    fn inline_eligible(&self) -> bool {
        true
    }

    fn stats_inline(&self) -> bool {
        true
    }
}

/// Namespace for starting servers (see [`QbsServer::start`]).
pub struct QbsServer;

impl QbsServer {
    /// Binds `config.addr` and starts serving `qbs` — returns immediately
    /// with a handle owning the reactor and worker threads.
    pub fn start(qbs: Arc<Qbs>, config: ServerConfig) -> std::io::Result<ServerHandle> {
        QbsServer::start_with_backend(qbs, config)
    }

    /// Binds `config.addr` and starts serving an arbitrary
    /// [`ServeBackend`] — the generalisation the `qbs-router` crate
    /// builds on. Everything protocol-facing (handshake, framing,
    /// admission, pipelining, graceful drain) is identical to
    /// [`QbsServer::start`].
    pub fn start_with_backend(
        backend: Arc<dyn ServeBackend>,
        config: ServerConfig,
    ) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let metrics_listener = match &config.metrics_addr {
            Some(metrics_addr) => {
                let l = TcpListener::bind(metrics_addr)?;
                l.set_nonblocking(true)?;
                Some(l)
            }
            None => None,
        };
        let metrics_addr = match &metrics_listener {
            Some(l) => Some(l.local_addr()?),
            None => None,
        };
        let slow_query = config.slow_query;
        let signal = Arc::new(ShutdownSignal {
            flag: AtomicBool::new(false),
        });
        let admission = Arc::new(Admission::new(config.admission));
        let wake = Arc::new(WakePipe::new()?);
        let completions: Arc<Mutex<Vec<Completion>>> = Arc::new(Mutex::new(Vec::new()));
        let worker_count = config.workers.max(1);
        let (jobs_tx, jobs_rx) = mpsc::channel::<Job>();
        let jobs_rx = Arc::new(Mutex::new(jobs_rx));

        let workers: Vec<JoinHandle<()>> = (0..worker_count)
            .map(|i| {
                let backend = Arc::clone(&backend);
                let admission = Arc::clone(&admission);
                let rx = Arc::clone(&jobs_rx);
                let completions = Arc::clone(&completions);
                let wake = Arc::clone(&wake);
                std::thread::Builder::new()
                    .name(format!("qbs-worker-{i}"))
                    .spawn(move || {
                        worker_loop(&*backend, &admission, &rx, &completions, &wake, slow_query)
                    })
                    .expect("spawn worker thread")
            })
            .collect();

        let reactor = {
            let backend = Arc::clone(&backend);
            let admission = Arc::clone(&admission);
            let signal = Arc::clone(&signal);
            let wake = Arc::clone(&wake);
            let completions = Arc::clone(&completions);
            std::thread::Builder::new()
                .name("qbs-reactor".to_string())
                .spawn(move || {
                    reactor_loop(
                        listener,
                        metrics_listener,
                        &*backend,
                        &admission,
                        &signal,
                        &wake,
                        &completions,
                        jobs_tx,
                        slow_query,
                    )
                })
                .expect("spawn reactor thread")
        };

        Ok(ServerHandle {
            addr,
            metrics_addr,
            signal,
            admission,
            backend,
            wake,
            reactor: Some(reactor),
            workers,
        })
    }
}

/// A running server: owns its threads, joins them on
/// [`ServerHandle::shutdown`] or drop.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    metrics_addr: Option<SocketAddr>,
    signal: Arc<ShutdownSignal>,
    admission: Arc<Admission>,
    backend: Arc<dyn ServeBackend>,
    wake: Arc<WakePipe>,
    reactor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The address of the HTTP `/metrics` listener, when configured
    /// (resolves port 0).
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// The shutdown latch — share it with a signal handler or watchdog;
    /// [`ShutdownSignal::trigger`] from anywhere initiates the same
    /// graceful drain as a `Shutdown` protocol frame.
    pub fn signal(&self) -> Arc<ShutdownSignal> {
        Arc::clone(&self.signal)
    }

    /// The served backend (shared with every worker).
    pub fn backend(&self) -> &Arc<dyn ServeBackend> {
        &self.backend
    }

    /// Number of reactor threads — always exactly 1, independent of how
    /// many connections are parked (the bench artifact records this).
    pub fn reactor_threads(&self) -> usize {
        1
    }

    /// Number of worker threads executing batches.
    pub fn worker_threads(&self) -> usize {
        self.workers.len()
    }

    /// A snapshot of the server's serving + admission counters — the same
    /// value a `Stats` protocol frame returns.
    pub fn stats(&self) -> ServerStats {
        self.backend.server_stats(self.admission.stats())
    }

    /// Triggers shutdown (idempotent), drains in-flight batches, joins the
    /// reactor and every worker, and returns once the server is fully
    /// torn down — after this the process holds no serving threads and can
    /// drop the session (unmapping the index) safely.
    pub fn shutdown(&mut self) {
        self.signal.trigger();
        self.wake.wake();
        if let Some(reactor) = self.reactor.take() {
            let _ = reactor.join();
        }
        // The reactor owned the job sender; with it joined, workers drain
        // the queued jobs and exit their recv loop.
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // All workers are joined, so this returns immediately; it is the
        // documented invariant (no in-flight work survives shutdown).
        self.admission.drain();
    }

    /// Blocks until the shutdown latch flips (a `Shutdown` frame arrived
    /// or [`ShutdownSignal::trigger`] was called elsewhere), then tears the
    /// server down as [`ServerHandle::shutdown`] does.
    pub fn wait(mut self) {
        while !self.signal.is_shutdown() {
            std::thread::sleep(WAIT_POLL);
        }
        self.shutdown();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A unit of work travelling from the reactor to a worker.
struct Job {
    token: u64,
    id: RequestId,
    version: u16,
    /// Trace ID from the v3 envelope ([`TraceId::NONE`] for v1/v2 peers),
    /// carried into the slow-query log and the router's replica calls.
    trace: TraceId,
    /// Peer address, for the slow-query log.
    peer: SocketAddr,
    /// When the reactor queued the job — the queue-wait stage clock.
    enqueued: Instant,
    kind: JobKind,
}

/// What a worker does with a [`Job`]. Batches always run here; `Stats`
/// and `Metrics` run here only for backends whose snapshot performs I/O
/// (the router polls every replica) — see [`ServeBackend::stats_inline`]
/// and [`ServeBackend::metrics_inline`].
enum JobKind {
    /// An admitted batch, carrying its admission permit.
    Batch {
        requests: Vec<QueryRequest>,
        permit: OwnedInflightGuard,
    },
    /// A `Stats` request the backend answers off-reactor.
    Stats,
    /// A `Metrics` snapshot the backend gathers off-reactor. With
    /// `http` set the completion carries a raw HTTP response for the
    /// `/metrics` listener instead of a protocol frame.
    Metrics { http: bool },
}

/// An encoded response travelling back from a worker to the reactor.
struct Completion {
    token: u64,
    bytes: Vec<u8>,
    /// Close the connection after flushing (v1 over-cap downgrade —
    /// the request/response rhythm is broken even though framing holds).
    close: bool,
}

/// Worker thread body: execute jobs, encode, hand back, wake.
fn worker_loop(
    backend: &dyn ServeBackend,
    admission: &Admission,
    rx: &Mutex<Receiver<Job>>,
    completions: &Mutex<Vec<Completion>>,
    wake: &WakePipe,
    slow_query: Option<Duration>,
) {
    loop {
        let job = {
            let rx = rx.lock().expect("job channel poisoned");
            rx.recv()
        };
        let Ok(job) = job else {
            break; // reactor gone, queue drained
        };
        let frame = match job.kind {
            JobKind::Batch { requests, permit } => {
                let queue_wait = job.enqueued.elapsed();
                let outcomes = run_batch(
                    backend, slow_query, job.peer, job.trace, &requests, queue_wait,
                );
                // Release the permits before the response is queued —
                // execution is what the in-flight bound meters, exactly
                // as before.
                drop(permit);
                ResponseFrame::Batch(outcomes)
            }
            JobKind::Stats => ResponseFrame::Stats(backend.server_stats(admission.stats())),
            JobKind::Metrics { http } => {
                let snapshot = backend.metrics_snapshot();
                if http {
                    let stats = backend.server_stats(admission.stats());
                    let body = render_prometheus(&stats, &snapshot);
                    completions
                        .lock()
                        .expect("completion queue poisoned")
                        .push(Completion {
                            token: job.token,
                            bytes: http_ok(&body),
                            close: true,
                        });
                    wake.wake();
                    continue;
                }
                ResponseFrame::Metrics(snapshot)
            }
        };
        let t_encode = Instant::now();
        let (bytes, close) = wire_response(job.version, job.id, job.trace, &frame);
        if let (Some(m), ResponseFrame::Batch(_)) = (backend.obs(), &frame) {
            m.record_batch_stage(Stage::WireEncode, t_encode.elapsed());
        }
        completions
            .lock()
            .expect("completion queue poisoned")
            .push(Completion {
                token: job.token,
                bytes,
                close,
            });
        wake.wake();
    }
}

/// Executes one batch through the backend's traced path, recording the
/// queue-wait stage and emitting a slow-query log line when execution
/// crosses the configured threshold. Shared by the worker path and the
/// reactor's inline fast path, so the slow-query log covers both.
fn run_batch(
    backend: &dyn ServeBackend,
    slow_query: Option<Duration>,
    peer: SocketAddr,
    trace: TraceId,
    requests: &[QueryRequest],
    queue_wait: Duration,
) -> Vec<QueryOutcome> {
    if let Some(m) = backend.obs() {
        if queue_wait > Duration::ZERO {
            m.record_batch_stage(Stage::QueueWait, queue_wait);
        }
    }
    let t_exec = Instant::now();
    let (outcomes, stages) = backend.execute_traced(requests, trace);
    let exec = t_exec.elapsed();
    if let Some(threshold) = slow_query {
        if exec >= threshold {
            if let Some(m) = backend.obs() {
                m.inc_slow_queries();
            }
            // One parseable line per offender: constant prefix, then
            // `key=value` fields only (greppable by trace ID in CI).
            eprintln!(
                "qbs-slow-query peer={peer} trace={trace} batch={} queue_us={} exec_us={} {}",
                requests.len(),
                queue_wait.as_micros(),
                exec.as_micros(),
                stages.render_us(),
            );
        }
    }
    outcomes
}

/// Encodes a response frame into on-the-wire bytes (length prefix
/// included) for a connection speaking `version`. A response that encodes
/// past the frame cap (a huge admitted batch of path-graph answers) is
/// downgraded to a typed `Error` — under v2 it carries the request's ID
/// and the connection survives (the client sees code 4 for that ticket
/// and can split the batch); under v1 the connection is closed after the
/// fault, exactly as the pre-reactor server did.
fn wire_response(
    version: u16,
    id: RequestId,
    trace: TraceId,
    frame: &ResponseFrame,
) -> (Vec<u8>, bool) {
    let envelope = |body: &[u8]| -> Vec<u8> {
        if version >= 3 {
            protocol::encode_envelope_v3(id, trace, body)
        } else if version == 2 {
            protocol::encode_envelope(id, body)
        } else {
            body.to_vec()
        }
    };
    let payload = envelope(&frame.encode_body());
    if payload.len() > MAX_FRAME_LEN as usize {
        let fault = ResponseFrame::Error(WireFault {
            code: fault_code::FRAME_TOO_LARGE,
            message: format!(
                "encoded response ({} bytes) exceeds the {MAX_FRAME_LEN}-byte frame cap; \
                 split the batch",
                payload.len()
            ),
        });
        let fault_payload = envelope(&fault.encode_body());
        return (frame_bytes(&fault_payload), version < 2);
    }
    (frame_bytes(&payload), false)
}

/// Prepends the length prefix.
fn frame_bytes(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// What the reactor still does with a connection's inbound bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ReadMode {
    /// Parsing frames normally.
    Frames,
    /// Consuming and discarding (a fault is queued; draining the peer so
    /// the close cannot reset the unread fault frame).
    Discard,
    /// Not reading (peer EOF, or server shutdown).
    Stopped,
}

/// Per-connection reactor state.
struct Conn {
    stream: TcpStream,
    /// Peer address, for the slow-query log.
    peer: SocketAddr,
    _guard: crate::admission::OwnedConnectionGuard,
    /// Negotiated protocol version; `None` until the client's preamble
    /// arrives.
    version: Option<u16>,
    /// Unparsed inbound bytes.
    rbuf: Vec<u8>,
    /// Outbound frames; the front may be partially written.
    wbuf: VecDeque<Vec<u8>>,
    /// Write offset into the front of `wbuf`.
    woff: usize,
    /// Jobs dispatched to workers and not yet completed.
    inflight: usize,
    /// v1 in-order queue (empty for v2 connections): frames parked
    /// behind an executing batch, admission-checked only when their turn
    /// comes — the pre-reactor server's exact rhythm, where a pipelined
    /// frame sat unread in the kernel buffer until the handler's next
    /// read. No permits are held by queued frames.
    pending: VecDeque<RequestFrame>,
    mode: ReadMode,
    /// Finish outstanding work, flush, then close.
    closing: bool,
    /// Force-drop time once closing (fault linger / shutdown drain).
    deadline: Option<Instant>,
    /// Socket error or final close decision — reap this connection.
    dead: bool,
}

impl Conn {
    fn new(stream: TcpStream, guard: crate::admission::OwnedConnectionGuard) -> Conn {
        let peer = stream
            .peer_addr()
            .unwrap_or_else(|_| SocketAddr::from(([0, 0, 0, 0], 0)));
        Conn {
            stream,
            peer,
            _guard: guard,
            version: None,
            rbuf: Vec::new(),
            wbuf: VecDeque::new(),
            woff: 0,
            inflight: 0,
            pending: VecDeque::new(),
            mode: ReadMode::Frames,
            closing: false,
            deadline: None,
            dead: false,
        }
    }

    /// Whether every queued and in-flight piece of work has been written.
    fn flushed(&self) -> bool {
        self.wbuf.is_empty() && self.inflight == 0 && self.pending.is_empty()
    }

    /// Queues a fatal fault: the frame goes out, inbound bytes are
    /// drained (not parsed) for a bounded linger, then the socket closes.
    /// Queued v1 frames are discarded — the stream's request/response
    /// rhythm is broken, so their replies could never be paired (and a
    /// non-empty queue would keep `flushed` false past the linger).
    fn fault_close(&mut self, bytes: Vec<u8>) {
        self.wbuf.push_back(bytes);
        self.pending.clear();
        self.mode = ReadMode::Discard;
        self.closing = true;
        self.deadline = Some(Instant::now() + FAULT_LINGER);
    }
}

/// Immutable context shared by the reactor's helper functions.
struct Ctx<'a> {
    backend: &'a dyn ServeBackend,
    admission: &'a Arc<Admission>,
    signal: &'a ShutdownSignal,
    jobs: &'a Sender<Job>,
    slow_query: Option<Duration>,
}

/// The reactor thread body.
#[allow(clippy::too_many_arguments)]
fn reactor_loop(
    listener: TcpListener,
    metrics_listener: Option<TcpListener>,
    backend: &dyn ServeBackend,
    admission: &Arc<Admission>,
    signal: &ShutdownSignal,
    wake: &WakePipe,
    completions: &Mutex<Vec<Completion>>,
    jobs: Sender<Job>,
    slow_query: Option<Duration>,
) {
    let ctx = Ctx {
        backend,
        admission,
        signal,
        jobs: &jobs,
        slow_query,
    };
    let shed_threads = Arc::new(AtomicUsize::new(0));
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    // HTTP `/metrics` connections, sharing the token space with `conns`
    // so worker completions route by whichever map owns the token.
    let mut https: HashMap<u64, HttpConn> = HashMap::new();
    let mut next_token: u64 = 0;
    let mut dispatched: usize = 0;
    let mut scratch = vec![0u8; READ_CHUNK];
    let mut shutdown_seen = false;
    let mut accept_pause: Option<Instant> = None;
    let listener_fd = poll::listener_fd(&listener);
    let metrics_fd = metrics_listener.as_ref().map(poll::listener_fd);

    loop {
        if signal.is_shutdown() && !shutdown_seen {
            shutdown_seen = true;
            // Stop reading everywhere; outstanding work flushes under a
            // bounded drain deadline.
            let deadline = Instant::now() + SHUTDOWN_LINGER;
            for conn in conns.values_mut() {
                conn.mode = ReadMode::Stopped;
                conn.closing = true;
                let conn_deadline = conn.deadline.get_or_insert(deadline);
                *conn_deadline = (*conn_deadline).min(deadline);
            }
            // The ops port drains like everything else, bounded by the
            // same deadline.
            for http in https.values_mut() {
                http.deadline.get_or_insert(deadline);
            }
        }
        if shutdown_seen && conns.is_empty() && https.is_empty() && dispatched == 0 {
            break;
        }

        // Build the poll set: wake pipe, listeners (while accepting), then
        // one entry per connection, aligned with `order` / `horder`.
        let mut fds = Vec::with_capacity(3 + conns.len() + https.len());
        fds.push(wake.poll_fd());
        // During an accept backoff the listener is left out of the poll
        // set entirely: its fd stays readable while the backlog is
        // nonempty, so polling it before the pause expires would return
        // instantly and spin.
        let accept_paused = accept_pause.is_some_and(|until| Instant::now() < until);
        let listener_slot = if shutdown_seen || accept_paused {
            None
        } else {
            accept_pause = None;
            fds.push(PollFd::new(listener_fd, POLLIN));
            Some(fds.len() - 1)
        };
        let metrics_slot = match metrics_fd {
            Some(fd) if !shutdown_seen => {
                fds.push(PollFd::new(fd, POLLIN));
                Some(fds.len() - 1)
            }
            _ => None,
        };
        let base = fds.len();
        let order: Vec<u64> = conns.keys().copied().collect();
        for token in &order {
            let conn = &conns[token];
            let mut events = 0i16;
            // Backpressure: a v1 connection with a deep pending queue is
            // not read further until completions drain it (its unread
            // bytes wait in the kernel buffer, as they did pre-reactor).
            if conn.mode != ReadMode::Stopped && conn.pending.len() < V1_PENDING_MAX {
                events |= POLLIN;
            }
            if !conn.wbuf.is_empty() {
                events |= POLLOUT;
            }
            fds.push(PollFd::new(poll::stream_fd(&conn.stream), events));
        }
        let hbase = fds.len();
        let horder: Vec<u64> = https.keys().copied().collect();
        for token in &horder {
            let http = &https[token];
            let mut events = 0i16;
            if !http.responded {
                events |= POLLIN;
            }
            if !http.wbuf.is_empty() {
                events |= POLLOUT;
            }
            fds.push(PollFd::new(poll::stream_fd(&http.stream), events));
        }

        if poll::poll(&mut fds, POLL_TIMEOUT_MS).is_err() {
            // EBADF and friends are reactor bugs; back off rather than
            // spin so the process stays debuggable.
            std::thread::sleep(Duration::from_millis(10));
        }

        if fds[0].readable() {
            wake.drain();
        }

        // Out-of-order completions: enqueue each response on its
        // connection and try to write it immediately.
        let done: Vec<Completion> = {
            let mut queue = completions.lock().expect("completion queue poisoned");
            std::mem::take(&mut *queue)
        };
        for completion in done {
            dispatched -= 1;
            if let Some(http) = https.get_mut(&completion.token) {
                // A `/metrics` snapshot gathered off-reactor (the router):
                // the bytes are a complete HTTP response.
                http.wbuf = completion.bytes;
                http.responded = true;
                http_write(http);
                continue;
            }
            let Some(conn) = conns.get_mut(&completion.token) else {
                continue; // connection died while the batch executed
            };
            conn.inflight -= 1;
            conn.wbuf.push_back(completion.bytes);
            if completion.close {
                conn.pending.clear();
                conn.mode = ReadMode::Discard;
                conn.closing = true;
                conn.deadline = Some(Instant::now() + FAULT_LINGER);
            }
            // A v1 connection runs one batch at a time: its completion
            // unblocks the next queued unit(s).
            advance_pending(&ctx, conn, completion.token, &mut dispatched);
            conn_write(conn);
        }

        if let Some(slot) = listener_slot {
            if fds[slot].readable() {
                accept_pause =
                    accept_new(&listener, &ctx, &shed_threads, &mut conns, &mut next_token);
            }
        }
        if let (Some(slot), Some(l)) = (metrics_slot, metrics_listener.as_ref()) {
            if fds[slot].readable() {
                accept_http(l, &mut https, &mut next_token);
            }
        }

        for (i, token) in order.iter().enumerate() {
            let Some(conn) = conns.get_mut(token) else {
                continue;
            };
            let fd = fds[base + i];
            if fd.readable() && conn.mode != ReadMode::Stopped {
                conn_read(&ctx, conn, *token, &mut scratch, &mut dispatched);
            }
            if fd.writable() && !conn.wbuf.is_empty() {
                conn_write(conn);
            }
        }
        for (i, token) in horder.iter().enumerate() {
            let Some(http) = https.get_mut(token) else {
                continue;
            };
            let fd = fds[hbase + i];
            if fd.readable() && !http.responded {
                http_read(&ctx, http, *token, &mut scratch, &mut dispatched);
            }
            if fd.writable() && !http.wbuf.is_empty() {
                http_write(http);
            }
        }

        // Reap finished and expired connections.
        let now = Instant::now();
        conns.retain(|_, conn| {
            if conn.dead {
                return false;
            }
            if conn.closing && conn.flushed() {
                // Everything delivered. For Discard-mode (faulted)
                // connections the periodic read path has been draining
                // the peer; with the write queue empty the close is now
                // an orderly FIN.
                let _ = conn.stream.shutdown(std::net::Shutdown::Write);
                return false;
            }
            if let Some(deadline) = conn.deadline {
                if now >= deadline {
                    return false; // drain budget exhausted: force drop
                }
            }
            true
        });
        https.retain(|_, http| {
            if http.dead {
                return false;
            }
            // `responded` alone is not enough: a worker-dispatched
            // `/metrics` request sets it with `wbuf` still empty until
            // the completion lands — reap only once bytes exist and are
            // fully written.
            if http.responded && !http.wbuf.is_empty() && http.wbuf.len() == http.woff {
                // Response delivered in full; `Connection: close`.
                let _ = http.stream.shutdown(std::net::Shutdown::Write);
                return false;
            }
            if let Some(deadline) = http.deadline {
                if now >= deadline {
                    return false;
                }
            }
            true
        });
    }
}

/// Cap on parked `/metrics` connections — the ops port serves one probe
/// at a time per scraper, so a handful is plenty; a flood is dropped at
/// accept.
const MAX_HTTP_CONNS: usize = 32;

/// Cap on an HTTP request head (`GET /metrics` plus headers).
const MAX_HTTP_HEAD: usize = 8 * 1024;

/// How long an HTTP connection may sit without completing its request.
const HTTP_DEADLINE: Duration = Duration::from_secs(10);

/// Per-connection state of the `/metrics` HTTP listener.
struct HttpConn {
    stream: TcpStream,
    /// Inbound bytes, up to the end of the request head.
    rbuf: Vec<u8>,
    /// The full response; written from `woff`.
    wbuf: Vec<u8>,
    woff: usize,
    /// The response is queued (or dispatched); stop reading.
    responded: bool,
    /// Force-drop time.
    deadline: Option<Instant>,
    dead: bool,
}

/// Accepts pending `/metrics` connections (outside admission — it is an
/// ops port; the cap bounds it instead).
fn accept_http(listener: &TcpListener, https: &mut HashMap<u64, HttpConn>, next_token: &mut u64) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _peer)) => stream,
            Err(_) => break, // WouldBlock or transient: next poll retries
        };
        if https.len() >= MAX_HTTP_CONNS || stream.set_nonblocking(true).is_err() {
            continue; // dropped; the scraper retries
        }
        *next_token += 1;
        https.insert(
            *next_token,
            HttpConn {
                stream,
                rbuf: Vec::new(),
                wbuf: Vec::new(),
                woff: 0,
                responded: false,
                deadline: Some(Instant::now() + HTTP_DEADLINE),
                dead: false,
            },
        );
    }
}

/// Reads an HTTP request head; answers `GET /metrics` with the
/// Prometheus rendering (inline, or via a worker when the backend's
/// snapshot performs I/O) and anything else with a 404.
fn http_read(
    ctx: &Ctx<'_>,
    http: &mut HttpConn,
    token: u64,
    scratch: &mut [u8],
    dispatched: &mut usize,
) {
    loop {
        match http.stream.read(scratch) {
            Ok(0) => {
                http.dead = true;
                return;
            }
            Ok(n) => {
                http.rbuf.extend_from_slice(&scratch[..n]);
                if http.rbuf.len() > MAX_HTTP_HEAD {
                    http.wbuf = http_error(431, "Request Header Fields Too Large");
                    http.responded = true;
                    http_write(http);
                    return;
                }
                if let Some(head_end) = find_head_end(&http.rbuf) {
                    http_dispatch(ctx, http, token, head_end, dispatched);
                    return;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                http.dead = true;
                return;
            }
        }
    }
}

/// Routes a complete HTTP request head.
fn http_dispatch(
    ctx: &Ctx<'_>,
    http: &mut HttpConn,
    token: u64,
    head_end: usize,
    dispatched: &mut usize,
) {
    let head = String::from_utf8_lossy(&http.rbuf[..head_end]);
    let request_line = head.lines().next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    if method != "GET" {
        http.wbuf = http_error(405, "Method Not Allowed");
        http.responded = true;
        http_write(http);
        return;
    }
    if path != "/metrics" {
        http.wbuf = http_error(404, "Not Found");
        http.responded = true;
        http_write(http);
        return;
    }
    if ctx.backend.metrics_inline() {
        let stats = ctx.backend.server_stats(ctx.admission.stats());
        let snapshot = ctx.backend.metrics_snapshot();
        http.wbuf = http_ok(&render_prometheus(&stats, &snapshot));
        http.responded = true;
        http_write(http);
    } else {
        // The router gathers the snapshot from every replica over the
        // network: answer on a worker, never on the reactor.
        http.responded = true;
        *dispatched += 1;
        let _ = ctx.jobs.send(Job {
            token,
            id: RequestId::CONNECTION,
            version: protocol::PROTOCOL_VERSION,
            trace: TraceId::NONE,
            peer: SocketAddr::from(([0, 0, 0, 0], 0)),
            enqueued: Instant::now(),
            kind: JobKind::Metrics { http: true },
        });
    }
}

/// Finds the end of the request head (the byte after `\r\n\r\n`).
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|i| i + 4)
}

/// Nonblocking write pump for an HTTP connection.
fn http_write(http: &mut HttpConn) {
    while http.woff < http.wbuf.len() {
        match http.stream.write(&http.wbuf[http.woff..]) {
            Ok(0) => {
                http.dead = true;
                return;
            }
            Ok(n) => http.woff += n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                http.dead = true;
                return;
            }
        }
    }
    let _ = http.stream.flush();
}

/// Builds a `200 OK` HTTP response around a Prometheus text body.
fn http_ok(body: &str) -> Vec<u8> {
    let mut out = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )
    .into_bytes();
    out.extend_from_slice(body.as_bytes());
    out
}

/// Builds an HTTP error response.
fn http_error(code: u16, reason: &str) -> Vec<u8> {
    format!("HTTP/1.1 {code} {reason}\r\nContent-Length: 0\r\nConnection: close\r\n\r\n")
        .into_bytes()
}

/// Renders the Prometheus exposition: serving-tier counters from the
/// `Stats` snapshot, then the per-stage histogram families.
fn render_prometheus(stats: &ServerStats, snapshot: &MetricsSnapshot) -> String {
    let mut out = String::with_capacity(4096);
    let mut counter = |name: &str, help: &str, value: u64| {
        out.push_str(&format!(
            "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"
        ));
    };
    counter(
        "qbs_requests_total",
        "Requests executed by the engine.",
        stats.engine.requests,
    );
    counter(
        "qbs_batches_total",
        "Batches executed by the engine.",
        stats.engine.batches,
    );
    counter(
        "qbs_request_errors_total",
        "Requests that returned a typed error.",
        stats.engine.errors,
    );
    counter(
        "qbs_admitted_batches_total",
        "Batches admitted past all bounds.",
        stats.admission.admitted_batches,
    );
    counter(
        "qbs_shed_overload_total",
        "Batches shed by the in-flight bound.",
        stats.admission.shed_overload,
    );
    counter(
        "qbs_shed_batch_size_total",
        "Batches shed by the per-batch cap.",
        stats.admission.shed_batch_size,
    );
    counter(
        "qbs_shed_connections_total",
        "Connections shed before service.",
        stats.admission.shed_connections,
    );
    if let Some(cache) = &stats.engine.cache {
        counter("qbs_cache_hits_total", "Answer-cache hits.", cache.hits);
        counter(
            "qbs_cache_misses_total",
            "Answer-cache misses.",
            cache.misses,
        );
    }
    if let Some(router) = &stats.router {
        counter(
            "qbs_router_batches_routed_total",
            "Client batches scattered by the router.",
            router.batches_routed,
        );
        counter(
            "qbs_router_retries_total",
            "Sub-batches retried on another replica.",
            router.retries,
        );
        counter(
            "qbs_router_unavailable_slots_total",
            "Request slots answered Unavailable.",
            router.unavailable_slots,
        );
        for replica in &router.replicas {
            out.push_str(&format!(
                "qbs_replica_failures_total{{replica=\"{}\"}} {}\n",
                replica.addr, replica.failures
            ));
        }
    }
    snapshot.render_prometheus_into(&mut out);
    out
}

/// Accepts every connection the backlog holds; admits or sheds each.
/// Returns the instant until which the reactor should stop polling the
/// listener (set after a transient accept error such as EMFILE — the fd
/// stays readable, so an immediate re-poll would spin).
fn accept_new(
    listener: &TcpListener,
    ctx: &Ctx<'_>,
    shed_threads: &Arc<AtomicUsize>,
    conns: &mut HashMap<u64, Conn>,
    next_token: &mut u64,
) -> Option<Instant> {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _peer)) => stream,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            // Transient (EMFILE under a connection flood, ...): back the
            // listener off for a beat, then retry — never spin.
            Err(_) => return Some(Instant::now() + ACCEPT_BACKOFF),
        };
        if stream.set_nonblocking(true).is_err() {
            continue;
        }
        stream.set_nodelay(true).ok();
        match ctx.admission.admit_connection_owned() {
            Ok(guard) => {
                *next_token += 1;
                conns.insert(*next_token, Conn::new(stream, guard));
            }
            Err(reason) => shed_detached(shed_threads, stream, ResponseFrame::Busy(reason)),
        }
    }
    None
}

/// Nonblocking read pump: pull bytes, then parse what accumulated.
fn conn_read(
    ctx: &Ctx<'_>,
    conn: &mut Conn,
    token: u64,
    scratch: &mut [u8],
    dispatched: &mut usize,
) {
    loop {
        match conn.stream.read(scratch) {
            Ok(0) => {
                // Peer finished sending. Keep the connection until its
                // outstanding responses flush (a pipelining client may
                // half-close after its last request), then close. The
                // deadline is a backstop, not the expected path: it
                // guarantees the connection is reaped — releasing its
                // slot and any queued work — even if the flush stalls,
                // and bounds the instant-wakeup poll ticks a fully
                // closed peer's POLLHUP would otherwise cause forever.
                conn.mode = ReadMode::Stopped;
                conn.closing = true;
                conn.deadline
                    .get_or_insert(Instant::now() + SHUTDOWN_LINGER);
                break;
            }
            Ok(n) => {
                if conn.mode == ReadMode::Frames {
                    conn.rbuf.extend_from_slice(&scratch[..n]);
                    process_rbuf(ctx, conn, token, dispatched);
                }
                // Discard mode: bytes vanish; the linger deadline bounds
                // how long a firehosing peer keeps the socket alive.
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                break;
            }
        }
        if conn.mode == ReadMode::Stopped {
            break;
        }
    }
}

/// Parses everything complete in the read buffer: the handshake first,
/// then frames.
fn process_rbuf(ctx: &Ctx<'_>, conn: &mut Conn, token: u64, dispatched: &mut usize) {
    if conn.version.is_none() {
        if conn.rbuf.len() < PREAMBLE_LEN {
            return;
        }
        let magic: [u8; 4] = conn.rbuf[..4].try_into().expect("fixed split");
        if magic != PROTOCOL_MAGIC {
            // The byte stream cannot be trusted for framing; close.
            conn.dead = true;
            return;
        }
        let theirs = u16::from_le_bytes([conn.rbuf[4], conn.rbuf[5]]);
        conn.rbuf.drain(..PREAMBLE_LEN);
        match protocol::negotiate(theirs) {
            Some(version) => {
                let mut preamble = Vec::with_capacity(PREAMBLE_LEN);
                let _ = protocol::write_preamble_version(&mut preamble, version);
                conn.wbuf.push_back(preamble);
                conn.version = Some(version);
            }
            None => {
                // A version-0 peer predates every build; answer with our
                // preamble and a v1-framed typed fault, then close.
                let mut reply = Vec::new();
                let _ = protocol::write_preamble(&mut reply);
                conn.wbuf.push_back(reply);
                let fault = ResponseFrame::Error(WireFault {
                    code: fault_code::VERSION_MISMATCH,
                    message: format!(
                        "server speaks versions {}..={}, client sent {theirs}",
                        protocol::MIN_PROTOCOL_VERSION,
                        protocol::PROTOCOL_VERSION
                    ),
                });
                let (bytes, _) = wire_response(1, RequestId::CONNECTION, TraceId::NONE, &fault);
                conn.fault_close(bytes);
                return;
            }
        }
    }
    let version = conn.version.expect("handshake complete");

    while conn.mode == ReadMode::Frames {
        if conn.rbuf.len() < 4 {
            return;
        }
        let len = u32::from_le_bytes(conn.rbuf[..4].try_into().expect("fixed split"));
        if len > MAX_FRAME_LEN {
            let fault = ResponseFrame::Error(WireFault {
                code: fault_code::FRAME_TOO_LARGE,
                message: format!("frame length {len} exceeds the cap"),
            });
            let (bytes, _) = wire_response(version, RequestId::CONNECTION, TraceId::NONE, &fault);
            conn.fault_close(bytes);
            return;
        }
        let total = 4 + len as usize;
        if conn.rbuf.len() < total {
            return;
        }
        let payload: Vec<u8> = conn.rbuf[4..total].to_vec();
        conn.rbuf.drain(..total);
        handle_frame(ctx, conn, token, version, &payload, dispatched);
    }
}

/// Decodes and dispatches one complete frame payload.
fn handle_frame(
    ctx: &Ctx<'_>,
    conn: &mut Conn,
    token: u64,
    version: u16,
    payload: &[u8],
    dispatched: &mut usize,
) {
    let (id, trace, body) = if version >= 3 {
        match protocol::split_envelope_v3(payload) {
            Ok((id, trace, body)) if !id.is_connection_scoped() => (id, trace, body),
            // A truncated envelope (or the reserved ID) breaks the
            // request/response pairing: connection-scoped fault.
            _ => {
                let fault = ResponseFrame::Error(WireFault {
                    code: fault_code::MALFORMED,
                    message: "v3 frame carried no usable request envelope".to_string(),
                });
                let (bytes, _) =
                    wire_response(version, RequestId::CONNECTION, TraceId::NONE, &fault);
                conn.fault_close(bytes);
                return;
            }
        }
    } else if version == 2 {
        match protocol::split_envelope(payload) {
            Ok((id, body)) if !id.is_connection_scoped() => (id, TraceId::NONE, body),
            _ => {
                let fault = ResponseFrame::Error(WireFault {
                    code: fault_code::MALFORMED,
                    message: "v2 frame carried no usable request id".to_string(),
                });
                let (bytes, _) =
                    wire_response(version, RequestId::CONNECTION, TraceId::NONE, &fault);
                conn.fault_close(bytes);
                return;
            }
        }
    } else {
        (RequestId::CONNECTION, TraceId::NONE, payload)
    };

    let frame = match RequestFrame::decode_body(body) {
        Ok(frame) => frame,
        Err(err) => {
            let fault = match &err {
                ProtocolError::UnknownTag(tag) => WireFault {
                    code: fault_code::UNKNOWN_TAG,
                    message: format!("unknown request tag {tag:#04x}"),
                },
                other => WireFault {
                    code: fault_code::MALFORMED,
                    message: other.to_string(),
                },
            };
            if version >= 2 {
                // Framing is intact (the length prefix consumed the whole
                // frame): fault the request, keep the connection.
                queue_reply(conn, version, id, trace, &ResponseFrame::Error(fault));
            } else {
                let (bytes, _) = wire_response(version, id, trace, &ResponseFrame::Error(fault));
                conn.fault_close(bytes);
            }
            return;
        }
    };

    // v1 connections are strictly ordered: while a batch is outstanding,
    // everything (further batches, control frames) queues behind it.
    // Admission runs when the frame's turn comes (`advance_pending`),
    // not at arrival — exactly when the pre-reactor blocking server
    // would have checked it — so a queued batch holds no permits while
    // it merely waits, and a shed decision reflects the load at
    // dispatch time rather than a snapshot frozen at arrival.
    if version < 2 && (conn.inflight > 0 || !conn.pending.is_empty()) {
        conn.pending.push_back(frame);
        return;
    }

    execute_frame(ctx, conn, token, version, id, trace, frame, dispatched);
}

/// Executes a frame now: control frames inline, batches to the workers.
#[allow(clippy::too_many_arguments)]
fn execute_frame(
    ctx: &Ctx<'_>,
    conn: &mut Conn,
    token: u64,
    version: u16,
    id: RequestId,
    trace: TraceId,
    frame: RequestFrame,
    dispatched: &mut usize,
) {
    match frame {
        RequestFrame::Batch(requests) => match ctx.admission.admit_batch_owned(requests.len()) {
            Ok(permit) => {
                // Single-request Distance frames execute inline on the
                // reactor: a pipelined stream of tiny frames arrives one
                // per reply in steady state, and bouncing each one through
                // the worker pool costs two context switches per request —
                // more than the query itself. Anything larger, and any
                // non-Distance mode (path-graph/sketch materialisation can
                // be arbitrarily heavy on a large graph), still goes to
                // the workers so one slow query can't add head-of-line
                // latency to every other connection's I/O.
                if ctx.backend.inline_eligible()
                    && requests.len() <= INLINE_BATCH_MAX
                    && requests.iter().all(|r| r.mode == QueryMode::Distance)
                {
                    // The shared helper keeps the slow-query log covering
                    // this path too; inline work never queued, so its
                    // queue wait is zero.
                    let outcomes = run_batch(
                        ctx.backend,
                        ctx.slow_query,
                        conn.peer,
                        trace,
                        &requests,
                        Duration::ZERO,
                    );
                    drop(permit);
                    let frame = ResponseFrame::Batch(outcomes);
                    let t_encode = Instant::now();
                    let (bytes, close) = wire_response(version, id, trace, &frame);
                    if let Some(m) = ctx.backend.obs() {
                        m.record_batch_stage(Stage::WireEncode, t_encode.elapsed());
                    }
                    push_reply(conn, bytes, close);
                    return;
                }
                conn.inflight += 1;
                *dispatched += 1;
                let _ = ctx.jobs.send(Job {
                    token,
                    id,
                    version,
                    trace,
                    peer: conn.peer,
                    enqueued: Instant::now(),
                    kind: JobKind::Batch { requests, permit },
                });
            }
            Err(reason) => queue_reply(conn, version, id, trace, &ResponseFrame::Busy(reason)),
        },
        RequestFrame::Stats => {
            if ctx.backend.stats_inline() {
                let stats = ctx.backend.server_stats(ctx.admission.stats());
                queue_reply(conn, version, id, trace, &ResponseFrame::Stats(stats));
            } else {
                // The backend's snapshot performs I/O (the router rounds
                // up every replica): answer it on a worker so the reactor
                // never blocks on the network.
                conn.inflight += 1;
                *dispatched += 1;
                let _ = ctx.jobs.send(Job {
                    token,
                    id,
                    version,
                    trace,
                    peer: conn.peer,
                    enqueued: Instant::now(),
                    kind: JobKind::Stats,
                });
            }
        }
        RequestFrame::Metrics => {
            if ctx.backend.metrics_inline() {
                let snapshot = ctx.backend.metrics_snapshot();
                queue_reply(conn, version, id, trace, &ResponseFrame::Metrics(snapshot));
            } else {
                conn.inflight += 1;
                *dispatched += 1;
                let _ = ctx.jobs.send(Job {
                    token,
                    id,
                    version,
                    trace,
                    peer: conn.peer,
                    enqueued: Instant::now(),
                    kind: JobKind::Metrics { http: false },
                });
            }
        }
        RequestFrame::Ping => queue_reply(conn, version, id, trace, &ResponseFrame::Pong),
        RequestFrame::Shutdown => {
            // Flip the latch before acking, so a client that saw the ack
            // can rely on the drain having begun. Frames the client
            // pipelined behind the Shutdown are dropped, as the old
            // server (which closed right after the ack) never read them.
            ctx.signal.trigger();
            queue_reply(conn, version, id, trace, &ResponseFrame::ShutdownAck);
            conn.pending.clear();
            conn.mode = ReadMode::Stopped;
            conn.closing = true;
        }
    }
}

/// After a v1 batch completes, admit and run queued frames in order until
/// one dispatches to the workers (at most one executes at a time) or the
/// queue empties.
///
/// `ReadMode::Stopped` does NOT stop the drain: it only means no further
/// bytes are read. Frames already queued were fully received before the
/// EOF / shutdown and still get their replies — a pipelining client may
/// half-close after its last request — and draining them is also what
/// lets `Conn::flushed` become true so the connection is reaped instead
/// of parked forever. `Discard` mode does stop it (framing broke; the
/// fault path already cleared the queue), as does a dead socket.
fn advance_pending(ctx: &Ctx<'_>, conn: &mut Conn, token: u64, dispatched: &mut usize) {
    let version = conn.version.unwrap_or(1);
    while conn.inflight == 0 && conn.mode != ReadMode::Discard && !conn.dead {
        let Some(frame) = conn.pending.pop_front() else {
            break;
        };
        execute_frame(
            ctx,
            conn,
            token,
            version,
            RequestId::CONNECTION,
            TraceId::NONE,
            frame,
            dispatched,
        );
    }
}

/// Encodes a reply and queues it (the next write flush sends it).
fn queue_reply(
    conn: &mut Conn,
    version: u16,
    id: RequestId,
    trace: TraceId,
    frame: &ResponseFrame,
) {
    let (bytes, close) = wire_response(version, id, trace, frame);
    push_reply(conn, bytes, close);
}

/// Queues already-encoded reply bytes, honouring the close-after flag.
fn push_reply(conn: &mut Conn, bytes: Vec<u8>, close: bool) {
    conn.wbuf.push_back(bytes);
    if close {
        // v1 over-cap downgrade: the request/response rhythm is broken,
        // so queued frames can never be answered pairably — drop them
        // and close once the fault frame flushes.
        conn.pending.clear();
        conn.mode = ReadMode::Discard;
        conn.closing = true;
        conn.deadline = Some(Instant::now() + FAULT_LINGER);
    }
}

/// Nonblocking write pump: flush the queue until it empties or the
/// socket's send buffer fills.
fn conn_write(conn: &mut Conn) {
    while let Some(front) = conn.wbuf.front() {
        match conn.stream.write(&front[conn.woff..]) {
            Ok(0) => {
                conn.dead = true;
                return;
            }
            Ok(n) => {
                conn.woff += n;
                if conn.woff >= front.len() {
                    conn.wbuf.pop_front();
                    conn.woff = 0;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                return;
            }
        }
    }
    let _ = conn.stream.flush();
}

/// Cap on concurrent shed-refusal threads; refusals beyond it are dropped
/// outright (plain close) — under a flood, bounded resources beat
/// delivering every courtesy reply.
const MAX_SHED_THREADS: usize = 8;

/// Sheds a refused connection on a bounded helper thread. `refuse` paces
/// at the client's speed (preamble drain + linger), so it must never run
/// on the reactor thread.
fn shed_detached(shed_threads: &Arc<AtomicUsize>, stream: TcpStream, frame: ResponseFrame) {
    if shed_threads.fetch_add(1, Ordering::SeqCst) >= MAX_SHED_THREADS {
        shed_threads.fetch_sub(1, Ordering::SeqCst);
        return; // flood regime: close without the courtesy frame
    }
    let counter = Arc::clone(shed_threads);
    let spawned = std::thread::Builder::new()
        .name("qbs-shed".into())
        .spawn(move || {
            refuse(stream, frame);
            counter.fetch_sub(1, Ordering::SeqCst);
        });
    if spawned.is_err() {
        // Spawn failure (resource exhaustion): the stream was dropped with
        // the unrun closure; release the slot it claimed.
        shed_threads.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Refuses a connection with one typed response frame, with short timeouts
/// so a slow client cannot stall the helper. The client's own preamble is
/// drained first — and its announced version honoured in the reply, so v1
/// clients decode the refusal too — and the close lingers, so the refusal
/// is delivered as orderly data + FIN, never lost to a reset.
fn refuse(mut stream: TcpStream, frame: ResponseFrame) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
    let mut hello = [0u8; PREAMBLE_LEN];
    let version = match Read::read_exact(&mut stream, &mut hello) {
        Ok(()) if hello[..4] == PROTOCOL_MAGIC => {
            protocol::negotiate(u16::from_le_bytes([hello[4], hello[5]]))
                .unwrap_or(protocol::MIN_PROTOCOL_VERSION)
        }
        // Garbage or truncated hello: best-effort v1-style refusal.
        _ => protocol::MIN_PROTOCOL_VERSION,
    };
    let _ = protocol::write_preamble_version(&mut stream, version);
    let (bytes, _) = wire_response(version, RequestId::CONNECTION, TraceId::NONE, &frame);
    let _ = stream.write_all(&bytes);
    linger_close(stream);
}

/// Half-closes the write side and drains whatever the client still sends,
/// so a close after a queued reply can never turn into a TCP reset that
/// destroys the un-read reply. The drain is bounded by a hard deadline
/// (not just per-read timeouts): a client uploading forever gets its FIN
/// and then a plain close, it cannot pin the draining thread.
fn linger_close(mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let deadline = Instant::now() + Duration::from_millis(500);
    let mut sink = [0u8; 512];
    while Instant::now() < deadline {
        match Read::read(&mut stream, &mut sink) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
}
