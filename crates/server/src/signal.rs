//! A tiny SIGINT/SIGTERM latch for graceful CLI teardown.
//!
//! The offline build environment has no `signal-hook`/`ctrlc` crates, so
//! this module binds `signal(2)` directly via `extern "C"` on Unix —
//! mirroring the `mmap` shim in `qbs-core` ([`qbs_core::mmap`]), it is the
//! only code in this crate allowed to use `unsafe`. The handler does the
//! one async-signal-safe thing possible: it stores into a process-global
//! [`AtomicBool`]. The serve loop polls that flag and runs the same
//! graceful drain as a protocol-level `Shutdown` frame, so Ctrl-C always
//! unmaps and flushes cleanly instead of hard-killing the process
//! mid-batch.
//!
//! On non-Unix targets the installer is a no-op returning a flag that
//! never fires (the default abrupt Ctrl-C behaviour applies there).
#![allow(unsafe_code)]

use std::sync::atomic::AtomicBool;

/// The process-global termination flag set by the signal handler.
static TERMINATION_FLAG: AtomicBool = AtomicBool::new(false);

/// Installs SIGINT + SIGTERM handlers (once; further calls just return the
/// flag) and returns the flag they set. Safe to call from any thread.
pub fn termination_flag() -> &'static AtomicBool {
    imp::install();
    &TERMINATION_FLAG
}

#[cfg(unix)]
mod imp {
    use std::ffi::c_int;
    use std::sync::Once;

    use super::TERMINATION_FLAG;

    const SIGINT: c_int = 2;
    const SIGTERM: c_int = 15;

    // `sighandler_t` is a function pointer on every Unix we target; the
    // return value (the previous handler) is ignored, declared as a raw
    // pointer-sized integer to stay ABI-compatible without naming it.
    extern "C" {
        fn signal(signum: c_int, handler: extern "C" fn(c_int)) -> usize;
    }

    extern "C" fn on_terminate(_signum: c_int) {
        // Atomic store is async-signal-safe; everything else (joining
        // threads, unmapping) happens on the polling thread.
        TERMINATION_FLAG.store(true, std::sync::atomic::Ordering::SeqCst);
    }

    static INSTALL: Once = Once::new();

    pub(super) fn install() {
        INSTALL.call_once(|| {
            // SAFETY: `on_terminate` is an `extern "C" fn(c_int)` matching
            // the sighandler_t ABI and only performs an atomic store, which
            // is async-signal-safe. `signal` itself has no memory-safety
            // preconditions.
            unsafe {
                signal(SIGINT, on_terminate);
                signal(SIGTERM, on_terminate);
            }
        });
    }
}

#[cfg(not(unix))]
mod imp {
    pub(super) fn install() {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn installer_is_idempotent_and_returns_the_flag() {
        let flag = termination_flag();
        let again = termination_flag();
        assert!(std::ptr::eq(flag, again));
        // The flag must start clear in a process that received no signal.
        // (Other tests never raise SIGINT/SIGTERM.)
        assert!(!flag.load(std::sync::atomic::Ordering::SeqCst));
    }
}
