//! Loopback integration tests: the served answers must be bit-identical
//! to local `Qbs::submit` — under protocol v1 and v2, one-shot and
//! pipelined, in-order and out-of-order — admission must shed with typed
//! `Busy` replies (never hangs or dropped connections), idle connections
//! must park on the reactor without consuming threads, and shutdown must
//! drain cleanly.

use std::sync::Arc;

use qbs_core::serialize::{self, IndexFormat, MapMode};
use qbs_core::{CacheConfig, Qbs, QbsConfig, QbsIndex, QueryRequest, RequestId};
use qbs_gen::catalog::{Catalog, DatasetId, Scale};
use qbs_server::{
    AdmissionConfig, BatchReply, BusyReason, ClientConfig, QbsClient, QbsServer, ServerConfig,
    ShutdownSignal,
};

/// Builds the shared test index (a tiny Douban stand-in), saves it as a v2
/// file, and returns an mmap-backed session over it plus the file path.
fn mmap_session(tag: &str) -> (Arc<Qbs>, std::path::PathBuf) {
    let dir =
        std::env::temp_dir().join(format!("qbs_server_loopback_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let graph = Catalog::paper_table1()
        .get(DatasetId::Douban)
        .expect("catalog")
        .generate(Scale::Tiny);
    let index = QbsIndex::try_build(graph, QbsConfig::with_landmark_count(8)).expect("build");
    let path = dir.join("index.qbs2");
    serialize::save_to_file_with(&index, &path, IndexFormat::Binary).expect("save");
    let qbs = Qbs::open(&path, MapMode::Mmap).expect("open mmap");
    assert_eq!(qbs.backend().name(), "view", "test serves the mmap path");
    (Arc::new(qbs.with_threads(2).expect("threads")), path)
}

/// A mixed Distance/PathGraph/Sketch workload with one poisoned pair
/// spliced into the middle.
fn mixed_requests(num_vertices: u32, salt: u32) -> Vec<QueryRequest> {
    let mut requests: Vec<QueryRequest> = (0..40u32)
        .map(|i| {
            let u = (i * 7 + salt) % num_vertices;
            let v = (i * 13 + 3 * salt + 1) % num_vertices;
            match i % 4 {
                0 => QueryRequest::distance(u, v),
                1 => QueryRequest::path_graph(u, v),
                2 => QueryRequest::path_graph(u, v).with_stats(),
                _ => QueryRequest::sketch(u, v),
            }
        })
        .collect();
    requests.insert(requests.len() / 2, QueryRequest::distance(num_vertices, 0));
    requests
}

#[test]
fn concurrent_clients_get_bit_identical_answers() {
    let (qbs, path) = mmap_session("differential");
    let num_vertices = qbs_core::IndexStore::num_vertices(qbs.as_ref()) as u32;
    let mut server = QbsServer::start(Arc::clone(&qbs), ServerConfig::default()).expect("start");
    let addr = server.local_addr().to_string();

    // The local reference is a *separate* session over the same file, so
    // the comparison cannot be satisfied by shared state.
    let local = Qbs::open(&path, MapMode::Mmap).expect("local reference");

    std::thread::scope(|scope| {
        for salt in 0..4u32 {
            let addr = addr.clone();
            let local = &local;
            scope.spawn(move || {
                // connect_retry: a client racing the handler spawns right
                // after start() may be refused with a retryable shed.
                let mut client =
                    QbsClient::connect_retry(&addr, std::time::Duration::from_secs(10))
                        .expect("connect");
                for round in 0..3u32 {
                    let requests = mixed_requests(num_vertices, salt + 4 * round);
                    let reply = client.submit(&requests).expect("submit");
                    let outcomes = reply.outcomes().expect("unloaded server never sheds");
                    let expected = local.submit(&requests);
                    assert_eq!(
                        outcomes,
                        &expected[..],
                        "client {salt} round {round}: served answers diverged from local submit"
                    );
                    let poisoned = &outcomes[requests.len() / 2];
                    assert!(poisoned.is_error(), "poisoned pair fails alone");
                    assert_eq!(
                        outcomes.iter().filter(|o| o.is_error()).count(),
                        1,
                        "exactly the poisoned slot errors"
                    );
                }
            });
        }
    });

    let stats = server.stats();
    assert_eq!(stats.admission.admitted_batches, 12);
    assert_eq!(stats.engine.batches, 12);
    assert_eq!(stats.engine.errors, 12, "one poisoned pair per batch");
    server.shutdown();
}

#[test]
fn cache_hits_are_bit_identical_across_the_wire() {
    let (_warmup, path) = mmap_session("cache");
    // Rebuild the session with a cache attached (admit everything).
    let qbs = Arc::new(
        Qbs::open(&path, MapMode::Mmap)
            .expect("open")
            .with_threads(2)
            .expect("threads")
            .with_cache(CacheConfig::default().admit_above(0)),
    );
    let num_vertices = qbs_core::IndexStore::num_vertices(qbs.as_ref()) as u32;
    let mut server = QbsServer::start(Arc::clone(&qbs), ServerConfig::default()).expect("start");
    let mut client = QbsClient::connect(&server.local_addr().to_string()).expect("connect");

    let requests = mixed_requests(num_vertices, 1);
    let cold = client.submit(&requests).expect("cold");
    let warm = client.submit(&requests).expect("warm");
    assert_eq!(cold, warm, "warm-cache replies are bit-identical");

    let stats = client.stats().expect("stats");
    let cache = stats.engine.cache.expect("cache attached");
    assert!(cache.hits > 0, "second round hit the cache: {cache:?}");
    assert_eq!(stats.engine.requests, 2 * requests.len() as u64);
    server.shutdown();
}

#[test]
fn exceeding_max_inflight_yields_typed_busy_not_a_hang() {
    let (qbs, _path) = mmap_session("busy");
    let num_vertices = qbs_core::IndexStore::num_vertices(qbs.as_ref()) as u32;
    let config = ServerConfig {
        admission: AdmissionConfig {
            max_inflight: 8,
            max_batch: 16,
            max_connections: 8,
        },
        ..ServerConfig::default()
    };
    let mut server = QbsServer::start(Arc::clone(&qbs), config).expect("start");
    let mut client = QbsClient::connect(&server.local_addr().to_string()).expect("connect");

    // A batch over the per-batch cap: typed Busy, connection stays usable.
    let oversized: Vec<QueryRequest> = (0..17u32)
        .map(|i| QueryRequest::distance(i % num_vertices, (i + 1) % num_vertices))
        .collect();
    match client.submit(&oversized).expect("reply") {
        BatchReply::Busy(BusyReason::BatchTooLarge { limit: 16, got: 17 }) => {}
        other => panic!("expected BatchTooLarge, got {other:?}"),
    }

    // A batch over the in-flight bound (9 > 8): typed Busy.
    let wide: Vec<QueryRequest> = (0..9u32)
        .map(|i| QueryRequest::distance(i % num_vertices, (i + 2) % num_vertices))
        .collect();
    match client.submit(&wide).expect("reply") {
        BatchReply::Busy(BusyReason::Overloaded {
            limit: 8, got: 9, ..
        }) => {}
        other => panic!("expected Overloaded, got {other:?}"),
    }

    // The same connection still serves admissible work afterwards.
    let ok: Vec<QueryRequest> = (0..8u32)
        .map(|i| QueryRequest::distance(i % num_vertices, (i + 3) % num_vertices))
        .collect();
    let reply = client.submit(&ok).expect("admissible batch");
    assert_eq!(reply.outcomes().expect("admitted").len(), 8);

    let stats = client.stats().expect("stats");
    assert_eq!(stats.admission.shed_batch_size, 1);
    assert_eq!(stats.admission.shed_overload, 1);
    assert_eq!(stats.admission.admitted_requests, 8);
    server.shutdown();
}

#[test]
fn connection_bound_sheds_with_busy() {
    let (qbs, _path) = mmap_session("connections");
    let config = ServerConfig::default().workers(2).max_connections(1);
    let mut server = QbsServer::start(Arc::clone(&qbs), config).expect("start");
    let addr = server.local_addr().to_string();

    let mut first = QbsClient::connect(&addr).expect("first connection");
    first.ping().expect("first connection is live");
    // The second connection is over the bound: its first exchange reads
    // back the typed Busy the handler queued before closing.
    let mut second = QbsClient::connect(&addr).expect("tcp connect succeeds");
    match second.ping() {
        Err(qbs_server::ProtocolError::Shed(BusyReason::TooManyConnections { limit: 1 })) => {}
        other => panic!("expected a typed connection shed, got {other:?}"),
    }
    drop(second);
    first.ping().expect("surviving connection unaffected");
    server.shutdown();
}

#[test]
fn hundreds_of_idle_connections_park_on_one_reactor_thread() {
    let (qbs, _path) = mmap_session("parked");
    // One worker: the pre-reactor design would shed every connection past
    // the pool size. The reactor parks them all on a single thread.
    let config = ServerConfig::default().workers(1);
    let mut server = QbsServer::start(Arc::clone(&qbs), config).expect("start");
    let addr = server.local_addr().to_string();
    assert_eq!(server.reactor_threads(), 1);
    assert_eq!(server.worker_threads(), 1);

    let mut clients: Vec<QbsClient> = (0..512)
        .map(|i| QbsClient::connect(&addr).unwrap_or_else(|e| panic!("connection {i}: {e}")))
        .collect();
    // Every parked connection is live — none was shed or half-accepted.
    for (i, client) in clients.iter_mut().enumerate() {
        client
            .ping()
            .unwrap_or_else(|e| panic!("parked connection {i} not served: {e}"));
    }
    let stats = server.stats();
    assert_eq!(stats.admission.connections, 512);
    assert_eq!(stats.admission.shed_connections, 0);
    drop(clients);
    server.shutdown();
}

#[test]
fn shutdown_frame_drains_and_stops_the_server() {
    let (qbs, _path) = mmap_session("shutdown");
    let num_vertices = qbs_core::IndexStore::num_vertices(qbs.as_ref()) as u32;
    let server = QbsServer::start(Arc::clone(&qbs), ServerConfig::default()).expect("start");
    let addr = server.local_addr().to_string();
    let signal: Arc<ShutdownSignal> = server.signal();

    let mut client = QbsClient::connect(&addr).expect("connect");
    let reply = client
        .submit(&[QueryRequest::path_graph(1 % num_vertices, 5 % num_vertices)])
        .expect("pre-shutdown batch");
    assert!(reply.outcomes().is_some());
    client.shutdown_server().expect("acknowledged");
    assert!(signal.is_shutdown(), "shutdown frame flipped the latch");

    // wait() joins every thread; afterwards new connections are refused.
    server.wait();
    assert!(
        QbsClient::connect(&addr).is_err(),
        "a drained server accepts no new connections"
    );
}

#[test]
fn ping_reconnect_and_version_negotiation() {
    let (qbs, _path) = mmap_session("handshake");
    let mut server = QbsServer::start(Arc::clone(&qbs), ServerConfig::default()).expect("start");
    let addr = server.local_addr().to_string();

    let mut client = QbsClient::connect(&addr).expect("connect");
    assert_eq!(client.protocol_version(), qbs_server::PROTOCOL_VERSION);
    assert!(client.ping().expect("pong").as_secs() < 5);
    client.reconnect().expect("reconnect to the same server");
    client.ping().expect("pong after reconnect");
    assert_eq!(client.addr(), addr);

    use std::io::{Read, Write};

    // A client announcing a future version negotiates down to the
    // server's newest version and is served normally.
    let mut raw = std::net::TcpStream::connect(&addr).expect("tcp");
    let mut preamble = [0u8; 8];
    preamble[..4].copy_from_slice(b"QBSP");
    preamble[4..6].copy_from_slice(&999u16.to_le_bytes());
    raw.write_all(&preamble).expect("send future version");
    let mut reply = [0u8; 8];
    raw.read_exact(&mut reply).expect("server preamble");
    assert_eq!(&reply[..4], b"QBSP");
    assert_eq!(
        u16::from_le_bytes([reply[4], reply[5]]),
        qbs_server::PROTOCOL_VERSION,
        "the server replies with the negotiated version"
    );
    let trace = qbs_core::TraceId(0xDEAD_BEEF_CAFE);
    qbs_server::protocol::write_request_v3(
        &mut raw,
        RequestId(7),
        trace,
        &qbs_server::protocol::RequestFrame::Ping,
    )
    .expect("v3 ping");
    let (id, echoed, frame) = qbs_server::protocol::read_response_v3(&mut raw).expect("v3 pong");
    assert_eq!(id, RequestId(7));
    assert_eq!(echoed, trace, "the reply echoes the request's trace ID");
    assert_eq!(frame, qbs_server::protocol::ResponseFrame::Pong);

    // Version 0 predates every build: typed fault, then close.
    let mut raw = std::net::TcpStream::connect(&addr).expect("tcp");
    let mut preamble = [0u8; 8];
    preamble[..4].copy_from_slice(b"QBSP");
    raw.write_all(&preamble).expect("send version 0");
    let mut reply = [0u8; 8];
    raw.read_exact(&mut reply).expect("server preamble");
    let frame = qbs_server::protocol::read_response(&mut raw).expect("fault frame");
    match frame {
        qbs_server::protocol::ResponseFrame::Error(fault) => {
            assert_eq!(
                fault.code,
                qbs_server::protocol::fault_code::VERSION_MISMATCH
            );
            assert!(fault.message.contains("client sent 0"), "{}", fault.message);
        }
        other => panic!("expected a version fault, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn v1_and_v3_clients_get_bit_identical_answers() {
    let (qbs, path) = mmap_session("versions");
    let num_vertices = qbs_core::IndexStore::num_vertices(qbs.as_ref()) as u32;
    let mut server = QbsServer::start(Arc::clone(&qbs), ServerConfig::default()).expect("start");
    let addr = server.local_addr().to_string();
    let local = Qbs::open(&path, MapMode::Mmap).expect("local reference");

    let mut v3 = QbsClient::connect(&addr).expect("v3 connect");
    assert_eq!(v3.protocol_version(), 3);
    let mut v1 =
        QbsClient::connect_with(&addr, ClientConfig::default().force_v1(true)).expect("v1 connect");
    assert_eq!(v1.protocol_version(), 1, "force_v1 pins the handshake");

    for salt in 0..3u32 {
        let requests = mixed_requests(num_vertices, salt);
        let expected = local.submit(&requests);
        for (name, client) in [("v3", &mut v3), ("v1", &mut v1)] {
            let reply = client.submit(&requests).expect("submit");
            assert_eq!(
                reply.outcomes().expect("unloaded server never sheds"),
                &expected[..],
                "{name} client diverged from local submit (salt {salt})"
            );
        }
    }

    // A v1 connection pipelines too (the wire is FIFO; the client stash
    // re-pairs replies): tickets redeemed in reverse order still match.
    let batch_a = mixed_requests(num_vertices, 11);
    let batch_b = mixed_requests(num_vertices, 12);
    let expected_a = local.submit(&batch_a);
    let expected_b = local.submit(&batch_b);
    let ticket_a = v1.send(&batch_a).expect("send a");
    let ticket_b = v1.send(&batch_b).expect("send b");
    let reply_b = v1.recv(ticket_b).expect("recv b");
    let reply_a = v1.recv(ticket_a).expect("recv a");
    assert_eq!(reply_a.outcomes().expect("admitted"), &expected_a[..]);
    assert_eq!(reply_b.outcomes().expect("admitted"), &expected_b[..]);

    // Control frames interleave with pipelined batches on both versions.
    let ticket = v3.send(&batch_a).expect("send");
    v3.ping().expect("ping while a batch is in flight");
    assert_eq!(
        v3.recv(ticket).expect("recv").outcomes().expect("admitted"),
        &expected_a[..]
    );
    server.shutdown();
}

#[test]
fn v1_half_close_with_queued_batches_drains_and_releases_permits() {
    let (qbs, path) = mmap_session("halfclose");
    let num_vertices = qbs_core::IndexStore::num_vertices(qbs.as_ref()) as u32;
    // One worker serialises execution, so the trailing batches are parked
    // in the v1 in-order queue when the EOF arrives.
    let mut server =
        QbsServer::start(Arc::clone(&qbs), ServerConfig::default().workers(1)).expect("start");
    let addr = server.local_addr().to_string();
    let local = Qbs::open(&path, MapMode::Mmap).expect("local reference");

    use qbs_server::protocol::{self, RequestFrame, ResponseFrame};
    use std::io::Read;

    let mut raw = std::net::TcpStream::connect(&addr).expect("tcp");
    // A timeout turns the historical failure mode (replies never come,
    // the connection leaks) into a clean assertion failure.
    raw.set_read_timeout(Some(std::time::Duration::from_secs(30)))
        .expect("timeout");
    protocol::write_preamble_version(&mut raw, 1).expect("client hello");
    assert_eq!(protocol::read_preamble(&mut raw).expect("server hello"), 1);

    let batches: Vec<Vec<QueryRequest>> = (0..4u32)
        .map(|salt| mixed_requests(num_vertices, 40 + salt))
        .collect();
    for batch in &batches {
        protocol::write_request(&mut raw, &RequestFrame::Batch(batch.clone())).expect("send");
    }
    // Half-close after the last request, before any reply is read: the
    // server must still answer every fully-received frame, in order,
    // then close its own side — and must not pin the connection (or its
    // admission permits) forever.
    raw.shutdown(std::net::Shutdown::Write).expect("half-close");

    for (i, batch) in batches.iter().enumerate() {
        let expected = local.submit(batch);
        match protocol::read_response(&mut raw).expect("reply after half-close") {
            ResponseFrame::Batch(outcomes) => {
                assert_eq!(outcomes, expected, "batch {i} diverged after half-close")
            }
            other => panic!("batch {i}: expected outcomes, got {other:?}"),
        }
    }
    let mut sink = [0u8; 1];
    assert_eq!(
        raw.read(&mut sink).expect("server FIN"),
        0,
        "orderly close after the last reply"
    );

    // Every permit the queued batches needed was released on completion.
    let stats = server.stats();
    assert_eq!(stats.admission.inflight, 0);
    assert_eq!(stats.admission.admitted_batches, 4);
    server.shutdown();
}

#[test]
fn pipelined_batches_complete_out_of_order_and_match_local() {
    let (qbs, path) = mmap_session("pipeline");
    let num_vertices = qbs_core::IndexStore::num_vertices(qbs.as_ref()) as u32;
    let mut server =
        QbsServer::start(Arc::clone(&qbs), ServerConfig::default().workers(2)).expect("start");
    let addr = server.local_addr().to_string();
    let local = Qbs::open(&path, MapMode::Mmap).expect("local reference");

    let mut client = QbsClient::connect(&addr).expect("connect");

    // Depth-8 pipeline, redeemed in a scrambled order: with two workers
    // the replies genuinely complete out of order on the wire, and every
    // ticket must still pair with its own batch.
    let batches: Vec<Vec<QueryRequest>> = (0..8u32)
        .map(|salt| mixed_requests(num_vertices, 20 + salt))
        .collect();
    let expected: Vec<_> = batches.iter().map(|b| local.submit(b)).collect();
    let tickets: Vec<_> = batches
        .iter()
        .map(|b| client.send(b).expect("send"))
        .collect();
    assert_eq!(client.in_flight(), 8);
    // Redeem middle-out: 5, 2, 7, 0, 6, 1, 4, 3.
    for &i in &[5usize, 2, 7, 0, 6, 1, 4, 3] {
        let reply = client.recv(tickets[i]).expect("recv");
        assert_eq!(
            reply.outcomes().expect("admitted"),
            &expected[i][..],
            "pipelined batch {i} diverged from local submit"
        );
    }
    assert_eq!(client.in_flight(), 0);

    // A ticket cannot be redeemed twice.
    match client.recv(tickets[3]) {
        Err(qbs_server::ProtocolError::UnknownTicket(_)) => {}
        other => panic!("expected UnknownTicket, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn metrics_frame_http_endpoint_and_slow_queries() {
    let (qbs, _path) = mmap_session("metrics");
    let num_vertices = qbs_core::IndexStore::num_vertices(qbs.as_ref()) as u32;
    // A zero slow-query threshold makes every admitted batch "slow", so
    // the counter (and the stderr log line) fire deterministically.
    let config = ServerConfig::default()
        .metrics_addr("127.0.0.1:0")
        .slow_query(std::time::Duration::ZERO);
    let mut server = QbsServer::start(Arc::clone(&qbs), config).expect("start");
    let addr = server.local_addr().to_string();
    let metrics_addr = server.metrics_addr().expect("metrics listener bound");

    let mut client = QbsClient::connect(&addr).expect("connect");
    let pinned = qbs_core::TraceId(0xABCD_EF01_2345);
    client.set_trace(pinned);
    for salt in 0..3u32 {
        let reply = client
            .submit(&mixed_requests(num_vertices, salt))
            .expect("submit");
        assert!(reply.outcomes().is_some());
    }
    assert_eq!(
        client.last_trace(),
        pinned,
        "pinned trace rides every frame"
    );

    // The Metrics frame returns per-stage histograms with real samples.
    let snapshot = client.metrics().expect("metrics frame");
    let stages = qbs_core::Stage::ALL.len();
    let executed: u64 = snapshot
        .hists
        .iter()
        .enumerate()
        .filter(|(i, _)| i % stages == qbs_core::Stage::Execute as usize)
        .map(|(_, h)| h.count)
        .sum();
    assert!(
        executed > 0,
        "execute stage recorded no samples: {snapshot:?}"
    );
    assert!(
        snapshot.slow_queries >= 3,
        "zero threshold marks every batch slow, got {}",
        snapshot.slow_queries
    );
    for h in &snapshot.hists {
        if h.count > 0 {
            assert!(
                h.quantile(0.5) <= h.quantile(0.99),
                "quantiles not monotone"
            );
            assert!(h.quantile(0.99) <= h.max, "p99 exceeds the observed max");
        }
    }

    // The HTTP endpoint renders the same registry in Prometheus text.
    use std::io::{Read, Write};
    let mut http = std::net::TcpStream::connect(metrics_addr).expect("http connect");
    http.set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .expect("timeout");
    http.write_all(b"GET /metrics HTTP/1.1\r\nHost: qbs\r\nConnection: close\r\n\r\n")
        .expect("request");
    let mut body = String::new();
    http.read_to_string(&mut body).expect("response");
    assert!(body.starts_with("HTTP/1.1 200 OK"), "bad status: {body}");
    for family in [
        "qbs_requests_total",
        "qbs_batches_total",
        "qbs_stage_seconds_bucket",
        "qbs_stage_seconds_quantile",
        "qbs_slow_queries_total",
    ] {
        assert!(body.contains(family), "missing family {family} in:\n{body}");
    }

    // Unknown paths get a 404 without killing the listener.
    let mut http = std::net::TcpStream::connect(metrics_addr).expect("http connect");
    http.write_all(b"GET /nope HTTP/1.1\r\nHost: qbs\r\nConnection: close\r\n\r\n")
        .expect("request");
    let mut reply = String::new();
    http.read_to_string(&mut reply).expect("response");
    assert!(reply.starts_with("HTTP/1.1 404"), "bad status: {reply}");
    server.shutdown();
}

#[test]
fn connect_retry_bounds_each_attempt() {
    // A listener that accepts but never handshakes: without a per-attempt
    // deadline, one hung handshake would eat the entire retry budget (the
    // old behaviour was a 30s io_timeout stall per attempt).
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let config = ClientConfig::default()
        .connect_timeout(std::time::Duration::from_millis(200))
        .io_timeout(std::time::Duration::from_secs(30));
    let started = std::time::Instant::now();
    let result =
        QbsClient::connect_retry_with(&addr, std::time::Duration::from_millis(900), config);
    let elapsed = started.elapsed();
    assert!(result.is_err(), "nothing ever handshakes");
    assert!(
        elapsed < std::time::Duration::from_secs(10),
        "retry loop must rotate attempts under the per-attempt bound, took {elapsed:?}"
    );
    drop(listener);
}
