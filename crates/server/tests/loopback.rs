//! Loopback integration tests: the served answers must be bit-identical
//! to local `Qbs::submit`, admission must shed with typed `Busy` replies
//! (never hangs or dropped connections), and shutdown must drain cleanly.

use std::sync::Arc;

use qbs_core::serialize::{self, IndexFormat, MapMode};
use qbs_core::{CacheConfig, Qbs, QbsConfig, QbsIndex, QueryRequest};
use qbs_gen::catalog::{Catalog, DatasetId, Scale};
use qbs_server::{
    AdmissionConfig, BatchReply, BusyReason, QbsClient, QbsServer, ServerConfig, ShutdownSignal,
};

/// Builds the shared test index (a tiny Douban stand-in), saves it as a v2
/// file, and returns an mmap-backed session over it plus the file path.
fn mmap_session(tag: &str) -> (Arc<Qbs>, std::path::PathBuf) {
    let dir =
        std::env::temp_dir().join(format!("qbs_server_loopback_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let graph = Catalog::paper_table1()
        .get(DatasetId::Douban)
        .expect("catalog")
        .generate(Scale::Tiny);
    let index = QbsIndex::try_build(graph, QbsConfig::with_landmark_count(8)).expect("build");
    let path = dir.join("index.qbs2");
    serialize::save_to_file_with(&index, &path, IndexFormat::Binary).expect("save");
    let qbs = Qbs::open(&path, MapMode::Mmap).expect("open mmap");
    assert_eq!(qbs.backend().name(), "view", "test serves the mmap path");
    (Arc::new(qbs.with_threads(2).expect("threads")), path)
}

/// A mixed Distance/PathGraph/Sketch workload with one poisoned pair
/// spliced into the middle.
fn mixed_requests(num_vertices: u32, salt: u32) -> Vec<QueryRequest> {
    let mut requests: Vec<QueryRequest> = (0..40u32)
        .map(|i| {
            let u = (i * 7 + salt) % num_vertices;
            let v = (i * 13 + 3 * salt + 1) % num_vertices;
            match i % 4 {
                0 => QueryRequest::distance(u, v),
                1 => QueryRequest::path_graph(u, v),
                2 => QueryRequest::path_graph(u, v).with_stats(),
                _ => QueryRequest::sketch(u, v),
            }
        })
        .collect();
    requests.insert(requests.len() / 2, QueryRequest::distance(num_vertices, 0));
    requests
}

#[test]
fn concurrent_clients_get_bit_identical_answers() {
    let (qbs, path) = mmap_session("differential");
    let num_vertices = qbs_core::IndexStore::num_vertices(qbs.as_ref()) as u32;
    let mut server = QbsServer::start(Arc::clone(&qbs), ServerConfig::default()).expect("start");
    let addr = server.local_addr().to_string();

    // The local reference is a *separate* session over the same file, so
    // the comparison cannot be satisfied by shared state.
    let local = Qbs::open(&path, MapMode::Mmap).expect("local reference");

    std::thread::scope(|scope| {
        for salt in 0..4u32 {
            let addr = addr.clone();
            let local = &local;
            scope.spawn(move || {
                // connect_retry: a client racing the handler spawns right
                // after start() may be refused with a retryable shed.
                let mut client =
                    QbsClient::connect_retry(&addr, std::time::Duration::from_secs(10))
                        .expect("connect");
                for round in 0..3u32 {
                    let requests = mixed_requests(num_vertices, salt + 4 * round);
                    let reply = client.submit(&requests).expect("submit");
                    let outcomes = reply.outcomes().expect("unloaded server never sheds");
                    let expected = local.submit(&requests);
                    assert_eq!(
                        outcomes,
                        &expected[..],
                        "client {salt} round {round}: served answers diverged from local submit"
                    );
                    let poisoned = &outcomes[requests.len() / 2];
                    assert!(poisoned.is_error(), "poisoned pair fails alone");
                    assert_eq!(
                        outcomes.iter().filter(|o| o.is_error()).count(),
                        1,
                        "exactly the poisoned slot errors"
                    );
                }
            });
        }
    });

    let stats = server.stats();
    assert_eq!(stats.admission.admitted_batches, 12);
    assert_eq!(stats.engine.batches, 12);
    assert_eq!(stats.engine.errors, 12, "one poisoned pair per batch");
    server.shutdown();
}

#[test]
fn cache_hits_are_bit_identical_across_the_wire() {
    let (_warmup, path) = mmap_session("cache");
    // Rebuild the session with a cache attached (admit everything).
    let qbs = Arc::new(
        Qbs::open(&path, MapMode::Mmap)
            .expect("open")
            .with_threads(2)
            .expect("threads")
            .with_cache(CacheConfig::default().admit_above(0)),
    );
    let num_vertices = qbs_core::IndexStore::num_vertices(qbs.as_ref()) as u32;
    let mut server = QbsServer::start(Arc::clone(&qbs), ServerConfig::default()).expect("start");
    let mut client = QbsClient::connect(&server.local_addr().to_string()).expect("connect");

    let requests = mixed_requests(num_vertices, 1);
    let cold = client.submit(&requests).expect("cold");
    let warm = client.submit(&requests).expect("warm");
    assert_eq!(cold, warm, "warm-cache replies are bit-identical");

    let stats = client.stats().expect("stats");
    let cache = stats.engine.cache.expect("cache attached");
    assert!(cache.hits > 0, "second round hit the cache: {cache:?}");
    assert_eq!(stats.engine.requests, 2 * requests.len() as u64);
    server.shutdown();
}

#[test]
fn exceeding_max_inflight_yields_typed_busy_not_a_hang() {
    let (qbs, _path) = mmap_session("busy");
    let num_vertices = qbs_core::IndexStore::num_vertices(qbs.as_ref()) as u32;
    let config = ServerConfig {
        admission: AdmissionConfig {
            max_inflight: 8,
            max_batch: 16,
            max_connections: 8,
        },
        ..ServerConfig::default()
    };
    let mut server = QbsServer::start(Arc::clone(&qbs), config).expect("start");
    let mut client = QbsClient::connect(&server.local_addr().to_string()).expect("connect");

    // A batch over the per-batch cap: typed Busy, connection stays usable.
    let oversized: Vec<QueryRequest> = (0..17u32)
        .map(|i| QueryRequest::distance(i % num_vertices, (i + 1) % num_vertices))
        .collect();
    match client.submit(&oversized).expect("reply") {
        BatchReply::Busy(BusyReason::BatchTooLarge { limit: 16, got: 17 }) => {}
        other => panic!("expected BatchTooLarge, got {other:?}"),
    }

    // A batch over the in-flight bound (9 > 8): typed Busy.
    let wide: Vec<QueryRequest> = (0..9u32)
        .map(|i| QueryRequest::distance(i % num_vertices, (i + 2) % num_vertices))
        .collect();
    match client.submit(&wide).expect("reply") {
        BatchReply::Busy(BusyReason::Overloaded {
            limit: 8, got: 9, ..
        }) => {}
        other => panic!("expected Overloaded, got {other:?}"),
    }

    // The same connection still serves admissible work afterwards.
    let ok: Vec<QueryRequest> = (0..8u32)
        .map(|i| QueryRequest::distance(i % num_vertices, (i + 3) % num_vertices))
        .collect();
    let reply = client.submit(&ok).expect("admissible batch");
    assert_eq!(reply.outcomes().expect("admitted").len(), 8);

    let stats = client.stats().expect("stats");
    assert_eq!(stats.admission.shed_batch_size, 1);
    assert_eq!(stats.admission.shed_overload, 1);
    assert_eq!(stats.admission.admitted_requests, 8);
    server.shutdown();
}

#[test]
fn connection_bound_sheds_with_busy() {
    let (qbs, _path) = mmap_session("connections");
    let config = ServerConfig {
        handler_threads: 2,
        admission: AdmissionConfig {
            max_connections: 1,
            ..AdmissionConfig::default()
        },
        ..ServerConfig::default()
    };
    let mut server = QbsServer::start(Arc::clone(&qbs), config).expect("start");
    let addr = server.local_addr().to_string();

    let mut first = QbsClient::connect(&addr).expect("first connection");
    first.ping().expect("first connection is live");
    // The second connection is over the bound: its first exchange reads
    // back the typed Busy the handler queued before closing.
    let mut second = QbsClient::connect(&addr).expect("tcp connect succeeds");
    match second.ping() {
        Err(qbs_server::ProtocolError::Shed(BusyReason::TooManyConnections { limit: 1 })) => {}
        other => panic!("expected a typed connection shed, got {other:?}"),
    }
    drop(second);
    first.ping().expect("surviving connection unaffected");
    server.shutdown();
}

#[test]
fn saturated_handler_pool_sheds_at_accept_instead_of_parking() {
    let (qbs, _path) = mmap_session("saturated");
    let config = ServerConfig {
        handler_threads: 1,
        ..ServerConfig::default()
    };
    let mut server = QbsServer::start(Arc::clone(&qbs), config).expect("start");
    let addr = server.local_addr().to_string();

    let mut first = QbsClient::connect(&addr).expect("first");
    first.ping().expect("served");

    // The only handler is now parked inside the first connection's frame
    // loop; a second arrival must be refused promptly with a typed shed —
    // never parked without a handshake until the first session ends.
    let started = std::time::Instant::now();
    let mut second = QbsClient::connect(&addr).expect("tcp connect");
    match second.ping() {
        Err(qbs_server::ProtocolError::Shed(BusyReason::NoIdleHandler { .. })) => {}
        other => panic!("expected an accept-time shed, got {other:?}"),
    }
    assert!(
        started.elapsed() < std::time::Duration::from_secs(5),
        "the shed must be prompt, not a parked-connection timeout"
    );
    drop(second);
    first.ping().expect("surviving connection unaffected");

    // Freeing the pool makes the server serve new connections again.
    drop(first);
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        if let Ok(mut third) = QbsClient::connect(&addr) {
            if third.ping().is_ok() {
                break;
            }
        }
        assert!(
            std::time::Instant::now() < deadline,
            "handler never returned to the idle pool"
        );
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    assert!(server.stats().admission.shed_connections >= 1);
    server.shutdown();
}

#[test]
fn shutdown_frame_drains_and_stops_the_server() {
    let (qbs, _path) = mmap_session("shutdown");
    let num_vertices = qbs_core::IndexStore::num_vertices(qbs.as_ref()) as u32;
    let server = QbsServer::start(Arc::clone(&qbs), ServerConfig::default()).expect("start");
    let addr = server.local_addr().to_string();
    let signal: Arc<ShutdownSignal> = server.signal();

    let mut client = QbsClient::connect(&addr).expect("connect");
    let reply = client
        .submit(&[QueryRequest::path_graph(1 % num_vertices, 5 % num_vertices)])
        .expect("pre-shutdown batch");
    assert!(reply.outcomes().is_some());
    client.shutdown_server().expect("acknowledged");
    assert!(signal.is_shutdown(), "shutdown frame flipped the latch");

    // wait() joins every thread; afterwards new connections are refused.
    server.wait();
    assert!(
        QbsClient::connect(&addr).is_err(),
        "a drained server accepts no new connections"
    );
}

#[test]
fn ping_reconnect_and_version_handshake() {
    let (qbs, _path) = mmap_session("handshake");
    let mut server = QbsServer::start(Arc::clone(&qbs), ServerConfig::default()).expect("start");
    let addr = server.local_addr().to_string();

    let mut client = QbsClient::connect(&addr).expect("connect");
    assert!(client.ping().expect("pong").as_secs() < 5);
    client.reconnect().expect("reconnect to the same server");
    client.ping().expect("pong after reconnect");
    assert_eq!(client.addr(), addr);

    // A client speaking a foreign version gets the typed fault frame.
    use std::io::{Read, Write};
    let mut raw = std::net::TcpStream::connect(&addr).expect("tcp");
    let mut preamble = [0u8; 8];
    preamble[..4].copy_from_slice(b"QBSP");
    preamble[4..6].copy_from_slice(&999u16.to_le_bytes());
    raw.write_all(&preamble).expect("send foreign version");
    let mut reply = [0u8; 8];
    raw.read_exact(&mut reply).expect("server preamble");
    let frame = qbs_server::protocol::read_response(&mut raw).expect("fault frame");
    match frame {
        qbs_server::protocol::ResponseFrame::Error(fault) => {
            assert_eq!(
                fault.code,
                qbs_server::protocol::fault_code::VERSION_MISMATCH
            );
            assert!(fault.message.contains("999"), "{}", fault.message);
        }
        other => panic!("expected a version fault, got {other:?}"),
    }
    server.shutdown();
}
