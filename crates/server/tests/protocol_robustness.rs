//! Protocol robustness: truncation and bit-flip sweeps over request and
//! response frame bodies (mirroring the `format_v2.rs` corruption sweep
//! for the on-disk format). The contract under test: **every** malformed
//! frame decodes to a typed error or to another well-formed value — never
//! a panic, never an allocation bomb — and the full frame reader enforces
//! its length cap before trusting anything.

use qbs_core::wire::{from_bytes, to_bytes};
use qbs_core::{
    CacheConfig, EngineStats, Qbs, QbsConfig, QueryOutcome, QueryRequest, RequestError, RequestId,
};
use qbs_graph::fixtures::figure4_graph;
use qbs_server::protocol::{
    encode_envelope, negotiate, read_frame, read_preamble, split_envelope, RequestFrame,
    ResponseFrame, ServerStats, WireFault, MAX_FRAME_LEN, MIN_PROTOCOL_VERSION, PREAMBLE_LEN,
};
use qbs_server::{AdmissionStats, BusyReason};

/// Representative request frame bodies, covering every tag and a real
/// mixed batch.
fn request_bodies() -> Vec<Vec<u8>> {
    let batch = RequestFrame::Batch(vec![
        QueryRequest::distance(6, 11),
        QueryRequest::path_graph(4, 12).with_stats(),
        QueryRequest::sketch(7, 9).uncached(),
        QueryRequest::distance(99, 0),
    ]);
    vec![
        batch.encode_body(),
        RequestFrame::Batch(Vec::new()).encode_body(),
        RequestFrame::Stats.encode_body(),
        RequestFrame::Ping.encode_body(),
        RequestFrame::Shutdown.encode_body(),
    ]
}

/// Representative response frame bodies, built from *real* outcomes of the
/// figure-4 index so the path-graph/sketch/stats payloads are non-trivial.
fn response_bodies() -> Vec<Vec<u8>> {
    let qbs = Qbs::build(figure4_graph(), QbsConfig::with_landmark_count(3))
        .expect("build")
        .with_cache(CacheConfig::default().admit_above(0));
    let outcomes = qbs.submit(&[
        QueryRequest::distance(6, 11),
        QueryRequest::path_graph(6, 11).with_stats(),
        QueryRequest::path_graph(4, 12),
        QueryRequest::sketch(7, 9),
        QueryRequest::distance(0, 99),
    ]);
    assert_eq!(outcomes.iter().filter(|o| o.is_error()).count(), 1);
    vec![
        ResponseFrame::Batch(outcomes).encode_body(),
        ResponseFrame::Stats(ServerStats {
            engine: qbs.engine_stats(),
            admission: AdmissionStats {
                admitted_batches: 3,
                admitted_requests: 17,
                shed_overload: 1,
                shed_batch_size: 2,
                shed_connections: 0,
                inflight: 4,
                connections: 2,
            },
            router: None,
        })
        .encode_body(),
        ResponseFrame::Pong.encode_body(),
        ResponseFrame::ShutdownAck.encode_body(),
        ResponseFrame::Busy(BusyReason::Overloaded {
            limit: 64,
            inflight: 62,
            got: 8,
        })
        .encode_body(),
        ResponseFrame::Error(WireFault {
            code: 2,
            message: "malformed frame payload".into(),
        })
        .encode_body(),
    ]
}

/// Every truncation of every request body is a typed error (the empty
/// prefix included) — and decoding is total: it must return, not panic.
#[test]
fn request_truncation_sweep() {
    for body in request_bodies() {
        for cut in 0..body.len() {
            assert!(
                RequestFrame::decode_body(&body[..cut]).is_err(),
                "request truncated to {cut}/{} bytes must not decode",
                body.len()
            );
        }
        assert!(RequestFrame::decode_body(&body).is_ok());
    }
}

#[test]
fn response_truncation_sweep() {
    for body in response_bodies() {
        for cut in 0..body.len() {
            assert!(
                ResponseFrame::decode_body(&body[..cut]).is_err(),
                "response truncated to {cut}/{} bytes must not decode",
                body.len()
            );
        }
        assert!(ResponseFrame::decode_body(&body).is_ok());
    }
}

/// Every single-bit flip of every frame body either fails with a typed
/// error or decodes into some well-formed value (a flipped vertex id is
/// indistinguishable from a different query) — the decoder must be total
/// either way, and a successful decode must re-encode cleanly (no
/// half-validated state escapes).
#[test]
fn request_bit_flip_sweep() {
    for body in request_bodies() {
        let mut mutated = body.clone();
        for byte in 0..body.len() {
            for bit in 0..8 {
                mutated[byte] ^= 1 << bit;
                if let Ok(frame) = RequestFrame::decode_body(&mutated) {
                    let reencoded = frame.encode_body();
                    assert_eq!(
                        RequestFrame::decode_body(&reencoded).expect("canonical re-decode"),
                        frame,
                        "byte {byte} bit {bit}"
                    );
                }
                mutated[byte] ^= 1 << bit;
            }
        }
        assert_eq!(mutated, body, "sweep restored the body");
    }
}

#[test]
fn response_bit_flip_sweep() {
    for body in response_bodies() {
        let mut mutated = body.clone();
        for byte in 0..body.len() {
            for bit in 0..8 {
                mutated[byte] ^= 1 << bit;
                if let Ok(frame) = ResponseFrame::decode_body(&mutated) {
                    let reencoded = frame.encode_body();
                    assert_eq!(
                        ResponseFrame::decode_body(&reencoded).expect("canonical re-decode"),
                        frame,
                        "byte {byte} bit {bit}"
                    );
                }
                mutated[byte] ^= 1 << bit;
            }
        }
    }
}

/// The length prefix is validated against the cap before any allocation,
/// and preamble corruption is typed.
#[test]
fn frame_reader_and_preamble_reject_corruption() {
    // Oversized length prefix.
    let mut oversized = (MAX_FRAME_LEN + 1).to_le_bytes().to_vec();
    oversized.extend_from_slice(&[0u8; 16]);
    assert!(read_frame(&mut &oversized[..]).is_err());

    // A length prefix promising more bytes than the stream holds.
    let mut short = 100u32.to_le_bytes().to_vec();
    short.extend_from_slice(&[0u8; 10]);
    assert!(read_frame(&mut &short[..]).is_err());

    // Preamble: every truncation is rejected; every single-bit flip of
    // the magic is rejected; a flipped *version* is either rejected (the
    // unspeakable version 0) or comes back as a well-formed announcement
    // that `negotiate` resolves to a version this build speaks.
    let mut good = Vec::new();
    qbs_server::protocol::write_preamble(&mut good).expect("preamble");
    assert_eq!(good.len(), PREAMBLE_LEN);
    for cut in 0..good.len() {
        assert!(read_preamble(&mut &good[..cut]).is_err());
    }
    let mut mutated = good.clone();
    for byte in 0..6 {
        for bit in 0..8 {
            mutated[byte] ^= 1 << bit;
            let announced = u16::from_le_bytes([mutated[4], mutated[5]]);
            match read_preamble(&mut &mutated[..]) {
                Err(_) => assert!(
                    byte < 4 || announced < MIN_PROTOCOL_VERSION,
                    "byte {byte} bit {bit}: only magic damage and version 0 are rejected"
                ),
                Ok(theirs) => {
                    assert!(byte >= 4, "flipped magic byte {byte} bit {bit} must fail");
                    assert_eq!(theirs, announced);
                    let speak = negotiate(theirs).expect("nonzero versions negotiate");
                    assert!(
                        (MIN_PROTOCOL_VERSION..=qbs_server::PROTOCOL_VERSION).contains(&speak),
                        "negotiated {speak} is a version this build speaks"
                    );
                }
            }
            mutated[byte] ^= 1 << bit;
        }
    }
}

/// The v2 request-ID envelope under the same adversarial treatment:
/// truncations inside the ID are typed errors; truncations inside the
/// enclosed body split cleanly but fail the body decode; bit flips in the
/// ID only change the ID (the body is untouched and still decodes).
#[test]
fn v2_envelope_truncation_and_bit_flip_sweep() {
    let id = RequestId(0x5A5A_A5A5);
    let cases: Vec<(Vec<u8>, bool)> = request_bodies()
        .into_iter()
        .map(|b| (b, true))
        .chain(response_bodies().into_iter().map(|b| (b, false)))
        .collect();
    for (body, is_request) in cases {
        let decodes = |inner: &[u8]| -> bool {
            if is_request {
                RequestFrame::decode_body(inner).is_ok()
            } else {
                ResponseFrame::decode_body(inner).is_ok()
            }
        };
        let enveloped = encode_envelope(id, &body);
        assert_eq!(enveloped.len(), body.len() + 4);
        let (split_id, inner) = split_envelope(&enveloped).expect("intact envelope");
        assert_eq!(split_id, id);
        assert!(decodes(inner), "intact body decodes through the envelope");

        for cut in 0..enveloped.len() {
            match split_envelope(&enveloped[..cut]) {
                Err(_) => assert!(cut < 4, "cut {cut}: only ID truncation fails the split"),
                Ok((split_id, inner)) => {
                    assert_eq!(split_id, id);
                    assert!(!decodes(inner), "cut {cut}: truncated body must not decode");
                }
            }
        }

        let mut mutated = enveloped.clone();
        for byte in 0..4 {
            for bit in 0..8 {
                mutated[byte] ^= 1 << bit;
                let (flipped_id, inner) = split_envelope(&mutated).expect("split still works");
                assert_ne!(flipped_id, id, "byte {byte} bit {bit} changed the ID");
                assert!(decodes(inner), "the enclosed body is untouched");
                mutated[byte] ^= 1 << bit;
            }
        }
    }
}

/// The core wire codecs behind the frames are themselves total under
/// truncation — swept here over the stats payloads the `Stats` frame
/// carries (outcome payloads are swept via the response bodies above).
#[test]
fn stats_payload_truncation_sweep() {
    let stats = ServerStats {
        engine: EngineStats {
            num_vertices: 1 << 20,
            num_landmarks: 20,
            threads: 8,
            view_backed: true,
            requests: u64::MAX / 2,
            batches: 12_345,
            errors: 17,
            planner: qbs_core::PlannerStats {
                dedup_hits: 9,
                labels_memoized: 8,
                fwd_levels_reused: 7,
            },
            cache: Some(qbs_core::CacheStats {
                hits: 1,
                misses: 2,
                insertions: 3,
                rejected: 4,
                evictions: 5,
                len: 6,
            }),
        },
        admission: AdmissionStats::default(),
        router: Some(qbs_core::RouterStats {
            batches_routed: 100,
            subbatches: 210,
            retries: 3,
            ejections: 1,
            unavailable_slots: 0,
            replicas: vec![qbs_core::ReplicaStats {
                addr: "127.0.0.1:7411".to_string(),
                healthy: true,
                requests: 4_000,
                batches: 120,
                retries: 3,
                ejections: 1,
                in_flight: 2,
                consecutive_failures: 0,
                failures: 7,
            }],
        }),
    };
    let bytes = to_bytes(&stats);
    assert_eq!(from_bytes::<ServerStats>(&bytes).unwrap(), stats);
    for cut in 0..bytes.len() {
        assert!(from_bytes::<ServerStats>(&bytes[..cut]).is_err());
    }
}

/// Error outcomes survive the wire exactly (the loopback differential
/// depends on poisoned pairs comparing equal).
#[test]
fn error_outcome_roundtrip() {
    let outcome = QueryOutcome::Error(RequestError::VertexOutOfRange {
        vertex: u64::MAX,
        num_vertices: 0,
    });
    assert_eq!(
        from_bytes::<QueryOutcome>(&to_bytes(&outcome)).unwrap(),
        outcome
    );
}
