//! Minimal benchmarking stand-in for the `criterion` crate.
//!
//! Supports the subset the `qbs-bench` benches use: `Criterion`,
//! `benchmark_group` with `sample_size` / `measurement_time` /
//! `warm_up_time`, `bench_function` / `bench_with_input`, `Bencher::iter`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros. Measurements are simple mean/min/max over the
//! configured samples — enough to compare code paths locally; no
//! statistical machinery or HTML reports.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }

    /// Creates an id carrying only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.function.is_empty() {
            write!(f, "{}", self.parameter)
        } else if self.parameter.is_empty() {
            write!(f, "{}", self.function)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    warm_up: Duration,
    measurement_time: Duration,
    /// Mean per-iteration time of the last `iter` call.
    last_mean: Duration,
    /// Minimum per-iteration time of the last `iter` call.
    last_min: Duration,
}

impl Bencher {
    fn new(samples: usize, warm_up: Duration, measurement_time: Duration) -> Self {
        Bencher {
            samples,
            warm_up,
            measurement_time,
            last_mean: Duration::ZERO,
            last_min: Duration::ZERO,
        }
    }

    /// Runs `routine` repeatedly and records per-iteration timing.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Warm-up: run until the warm-up budget is spent (at least once).
        let warm_up_start = Instant::now();
        loop {
            black_box(routine());
            if warm_up_start.elapsed() >= self.warm_up {
                break;
            }
        }

        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        let mut measured = 0usize;
        let measurement_start = Instant::now();
        for _ in 0..self.samples.max(1) {
            let start = Instant::now();
            black_box(routine());
            let elapsed = start.elapsed();
            total += elapsed;
            min = min.min(elapsed);
            measured += 1;
            if measurement_start.elapsed() >= self.measurement_time && measured >= 1 {
                break;
            }
        }
        self.last_mean = total / measured as u32;
        self.last_min = min;
    }
}

/// Shared measurement settings.
#[derive(Clone, Copy, Debug)]
struct Settings {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            sample_size: 20,
            warm_up_time: Duration::from_millis(50),
            measurement_time: Duration::from_millis(500),
        }
    }
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    /// Sets the default sample count.
    pub fn sample_size(mut self, samples: usize) -> Self {
        self.settings.sample_size = samples;
        self
    }

    /// Sets the default measurement budget.
    pub fn measurement_time(mut self, time: Duration) -> Self {
        self.settings.measurement_time = time;
        self
    }

    /// Sets the default warm-up budget.
    pub fn warm_up_time(mut self, time: Duration) -> Self {
        self.settings.warm_up_time = time;
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            settings: self.settings,
            _criterion: self,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let settings = self.settings;
        run_benchmark(name, settings, f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    settings: Settings,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count for this group.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.settings.sample_size = samples;
        self
    }

    /// Sets the measurement budget for this group.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.settings.measurement_time = time;
        self
    }

    /// Sets the warm-up budget for this group.
    pub fn warm_up_time(&mut self, time: Duration) -> &mut Self {
        self.settings.warm_up_time = time;
        self
    }

    /// Sets the throughput hint (accepted for API compatibility; the shim
    /// does not report throughput-normalised numbers).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_benchmark(&format!("{}/{}", self.name, id), self.settings, f);
        self
    }

    /// Runs one parameterised benchmark in this group.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_benchmark(&format!("{}/{}", self.name, id), self.settings, |b| {
            f(b, input)
        });
        self
    }

    /// Finishes the group (drops it; kept for API compatibility).
    pub fn finish(self) {}
}

/// Throughput hint (API compatibility only).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

fn run_benchmark(label: &str, settings: Settings, mut f: impl FnMut(&mut Bencher)) {
    let mut bencher = Bencher::new(
        settings.sample_size,
        settings.warm_up_time,
        settings.measurement_time,
    );
    f(&mut bencher);
    println!(
        "bench {label:<60} mean {:>12} min {:>12}",
        format_duration(bencher.last_mean),
        format_duration(bencher.last_min)
    );
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos}ns")
    } else if nanos < 1_000_000 {
        format!("{:.2}us", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2}ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2}s", nanos as f64 / 1e9)
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench`/`cargo test` pass harness flags; a plain-main
            // bench binary only needs to skip the run under `--test`.
            let test_mode = std::env::args().any(|a| a == "--test");
            if test_mode {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_reports_nonzero_mean() {
        let mut c = Criterion::default()
            .sample_size(5)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(1));
        let mut group = c.benchmark_group("demo");
        group.sample_size(5);
        group.bench_function("sum", |b| {
            b.iter(|| (0..1000u64).sum::<u64>());
        });
        group.bench_with_input(BenchmarkId::new("sq", 7), &7u64, |b, &x| {
            b.iter(|| x * x);
        });
        group.finish();
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", "p").to_string(), "f/p");
        assert_eq!(BenchmarkId::from_parameter(3).to_string(), "3");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration(Duration::from_nanos(500)), "500ns");
        assert!(format_duration(Duration::from_micros(12)).ends_with("us"));
        assert!(format_duration(Duration::from_millis(12)).ends_with("ms"));
        assert!(format_duration(Duration::from_secs(2)).ends_with('s'));
    }
}
