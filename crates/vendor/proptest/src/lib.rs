//! Minimal property-testing stand-in for the `proptest` crate.
//!
//! Implements the subset the workspace's property tests use: the
//! `proptest!` macro (with an optional `#![proptest_config(...)]` header),
//! range and tuple strategies, `prop::collection::vec`, `prop_map`, and the
//! `prop_assert*` macros. Unlike upstream proptest there is no shrinking:
//! a failing case panics with the deterministic case number, which is
//! reproducible because every case derives its inputs from a fixed seed.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Everything the tests import.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

/// Test-run configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to execute per property.
    pub cases: u32,
    /// Accepted for API compatibility; unused by the shim.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// Deterministic per-case random source (SplitMix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates the RNG for one test case.
    pub fn new(case: u64) -> Self {
        // Mix the case number so consecutive cases decorrelate.
        TestRng {
            state: case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, span)`.
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        self.next_u64() % span
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<F, O>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        MapStrategy { base: self, f }
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Clone)]
pub struct MapStrategy<S, F> {
    base: S,
    f: F,
}

impl<S, F, O> Strategy for MapStrategy<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $ty
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

/// Namespace mirror of `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};
        use std::ops::Range;

        /// Strategy for vectors whose length is sampled from `size`.
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }

        /// The result of [`vec()`].
        pub struct VecStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let len = self.size.generate(rng);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Asserts a condition inside a property (panics with the failing message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_eq!($left, $right, $($fmt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_ne!($left, $right, $($fmt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr;) => {};
    ($config:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            for case in 0..config.cases as u64 {
                let mut rng = $crate::TestRng::new(case);
                let _ = case;
                $(let $arg = $crate::Strategy::generate(&$strategy, &mut rng);)+
                $body
            }
        }
        $crate::__proptest_impl!{ $config; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in 0usize..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn mapped_strategies_apply(v in prop::collection::vec((0u32..10, 0u32..10), 1..20)) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            for (a, b) in v {
                prop_assert!(a < 10 && b < 10);
            }
        }
    }

    #[test]
    fn deterministic_cases() {
        let mut a = super::TestRng::new(5);
        let mut b = super::TestRng::new(5);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
