//! Minimal, deterministic stand-in for the `rand` crate.
//!
//! Implements exactly the surface the generator crate uses: a fast seedable
//! small RNG (`rngs::SmallRng`, here an xoshiro256++ core), the [`Rng`]
//! extension methods `gen`, `gen_range`, `gen_bool`, and
//! `seq::SliceRandom::shuffle`. Distributions are uniform; integer ranges
//! use Lemire-style rejection so the modulo bias is eliminated.
//!
//! Streams are deterministic per seed and stable across platforms, which is
//! the only property the workspace relies on (reproducible synthetic
//! graphs and workloads).

#![forbid(unsafe_code)]

use std::ops::Range;

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Builds the generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::SeedableRng;

    /// A small, fast RNG (xoshiro256++), deterministic per seed.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        /// Produces the next 64 random bits.
        #[inline]
        pub fn next_u64(&mut self) -> u64 {
            let result = (self.s[0].wrapping_add(self.s[3]))
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Expand the seed with SplitMix64, as the upstream crate does.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let mut s = [next(), next(), next(), next()];
            if s == [0, 0, 0, 0] {
                s = [1, 2, 3, 4]; // xoshiro must not start at the all-zero state
            }
            SmallRng { s }
        }
    }
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Samples uniformly from `[low, high)`.
    fn sample_range(rng: &mut rngs::SmallRng, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            #[inline]
            fn sample_range(rng: &mut rngs::SmallRng, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range called with empty range");
                let span = (high as u64) - (low as u64);
                low + (uniform_u64(rng, span) as $ty)
            }
        }
    )*};
}

impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            #[inline]
            fn sample_range(rng: &mut rngs::SmallRng, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range called with empty range");
                let span = (high as i64).wrapping_sub(low as i64) as u64;
                ((low as i64).wrapping_add(uniform_u64(rng, span) as i64)) as $ty
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_range(rng: &mut rngs::SmallRng, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range called with empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        low + unit * (high - low)
    }
}

impl SampleUniform for f32 {
    #[inline]
    fn sample_range(rng: &mut rngs::SmallRng, low: Self, high: Self) -> Self {
        f64::sample_range(rng, low as f64, high as f64) as f32
    }
}

/// Uniform integer in `[0, span)` by multiply-shift with rejection
/// (Lemire's method); `span` must be non-zero.
#[inline]
fn uniform_u64(rng: &mut rngs::SmallRng, span: u64) -> u64 {
    debug_assert!(span > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(span as u128);
        let low = m as u64;
        if low >= span {
            // Fast path: no bias possible for this draw.
            return (m >> 64) as u64;
        }
        let threshold = span.wrapping_neg() % span;
        if low >= threshold {
            return (m >> 64) as u64;
        }
    }
}

/// Values producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly random value.
    fn draw(rng: &mut rngs::SmallRng) -> Self;
}

impl Standard for u64 {
    fn draw(rng: &mut rngs::SmallRng) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw(rng: &mut rngs::SmallRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for f64 {
    fn draw(rng: &mut rngs::SmallRng) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for bool {
    fn draw(rng: &mut rngs::SmallRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Extension methods over a random source (implemented for
/// [`rngs::SmallRng`]).
pub trait Rng {
    /// The underlying generator.
    fn core(&mut self) -> &mut rngs::SmallRng;

    /// Draws one uniformly random value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self.core())
    }

    /// Samples uniformly from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self.core(), range.start, range.end)
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        f64::draw(self.core()) < p
    }
}

impl Rng for rngs::SmallRng {
    #[inline]
    fn core(&mut self) -> &mut rngs::SmallRng {
        self
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{rngs::SmallRng, uniform_u64};

    /// Slice shuffling (Fisher–Yates).
    pub trait SliceRandom {
        /// Shuffles the slice in place.
        fn shuffle(&mut self, rng: &mut SmallRng);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle(&mut self, rng: &mut SmallRng) {
            for i in (1..self.len()).rev() {
                let j = uniform_u64(rng, (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;
    use crate::seq::SliceRandom;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_are_inclusive_exclusive() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..10);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(0.0f64..2.5);
            assert!((0.0..2.5).contains(&y));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut data: Vec<u32> = (0..100).collect();
        data.shuffle(&mut rng);
        let mut sorted = data.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(data, sorted, "shuffle left the slice untouched");
    }
}
