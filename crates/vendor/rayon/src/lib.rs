//! Minimal data-parallelism stand-in for the `rayon` crate.
//!
//! Provides the slice of rayon this workspace uses: `into_par_iter()` over
//! ranges and vectors with `.map(...).collect()`, plus `ThreadPoolBuilder` /
//! `ThreadPool::install`. Parallelism is real — work is executed on scoped
//! OS threads that pull items from a shared atomic cursor (a simple form of
//! work stealing: an idle worker keeps claiming whatever work remains), and
//! results are returned in input order.

#![forbid(unsafe_code)]

use std::cell::Cell;
use std::fmt;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Glob import mirror of `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelIterator};
}

thread_local! {
    /// Thread-count override installed by [`ThreadPool::install`].
    static INSTALLED_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The number of worker threads parallel iterators will use in the current
/// context: the installed pool's size, or the machine's parallelism.
pub fn current_num_threads() -> usize {
    INSTALLED_THREADS.with(|cell| match cell.get() {
        Some(n) => n,
        None => default_parallelism(),
    })
}

fn default_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Error returned by [`ThreadPoolBuilder::build`].
#[derive(Debug)]
pub struct ThreadPoolBuildError {
    message: String,
}

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`].
#[derive(Clone, Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Creates a builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker count (0 means "use the default parallelism").
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = Some(num_threads);
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = match self.num_threads {
            Some(0) | None => default_parallelism(),
            Some(n) => n,
        };
        Ok(ThreadPool { threads })
    }
}

/// A logical thread pool: in this shim it only carries the configured
/// parallelism, which scoped workers pick up via [`ThreadPool::install`].
#[derive(Clone, Debug)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// Number of worker threads this pool represents.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }

    /// Runs `op` with this pool's parallelism installed for any parallel
    /// iterators it executes.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        INSTALLED_THREADS.with(|cell| {
            let previous = cell.replace(Some(self.threads));
            let result = op();
            cell.set(previous);
            result
        })
    }
}

/// Conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Concrete iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Converts `self`.
    fn into_par_iter(self) -> Self::Iter;
}

/// A minimal parallel iterator: `map` + `collect`.
pub trait ParallelIterator: Sized {
    /// Element type.
    type Item: Send;

    /// Materialises the items (called once, on the driving thread).
    fn items(self) -> Vec<Self::Item>;

    /// Maps every element through `f` in parallel.
    fn map<F, R>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> R + Sync,
        R: Send,
    {
        Map { base: self, f }
    }

    /// Collects into a `Vec`, preserving input order.
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_par_iter(self.items())
    }
}

/// Collection types a parallel iterator can collect into.
pub trait FromParallelIterator<T> {
    /// Builds the collection from the already-evaluated items.
    fn from_par_iter(items: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter(items: Vec<T>) -> Self {
        items
    }
}

/// Parallel iterator over a materialised item list.
pub struct IterVec<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for IterVec<T> {
    type Item = T;

    fn items(self) -> Vec<T> {
        self.items
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = IterVec<T>;

    fn into_par_iter(self) -> IterVec<T> {
        IterVec { items: self }
    }
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    type Iter = IterVec<usize>;

    fn into_par_iter(self) -> IterVec<usize> {
        IterVec {
            items: self.collect(),
        }
    }
}

impl IntoParallelIterator for Range<u32> {
    type Item = u32;
    type Iter = IterVec<u32>;

    fn into_par_iter(self) -> IterVec<u32> {
        IterVec {
            items: self.collect(),
        }
    }
}

/// The result of [`ParallelIterator::map`]: evaluates `f` over the base
/// items on a scoped worker pool.
pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B, F, R> ParallelIterator for Map<B, F>
where
    B: ParallelIterator,
    B::Item: Send,
    F: Fn(B::Item) -> R + Sync,
    R: Send,
{
    type Item = R;

    fn items(self) -> Vec<R> {
        let inputs = self.base.items();
        run_ordered(inputs, &self.f)
    }
}

/// Evaluates `f` over `inputs` on `current_num_threads()` scoped workers,
/// returning outputs in input order. Workers claim items through a shared
/// atomic cursor, so load imbalance self-corrects (idle workers keep
/// claiming work until none remains).
fn run_ordered<T: Send, R: Send>(inputs: Vec<T>, f: &(impl Fn(T) -> R + Sync)) -> Vec<R> {
    let threads = current_num_threads().min(inputs.len()).max(1);
    if threads == 1 {
        return inputs.into_iter().map(f).collect();
    }

    let len = inputs.len();
    let slots: Vec<Mutex<Option<T>>> = inputs.into_iter().map(|x| Mutex::new(Some(x))).collect();
    let cursor = AtomicUsize::new(0);
    let results = Mutex::new(Vec::with_capacity(len));

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let idx = cursor.fetch_add(1, Ordering::Relaxed);
                    if idx >= len {
                        break;
                    }
                    let item = slots[idx]
                        .lock()
                        .expect("input slot poisoned")
                        .take()
                        .expect("input slot claimed twice");
                    local.push((idx, f(item)));
                }
                results
                    .lock()
                    .expect("result vector poisoned")
                    .append(&mut local);
            });
        }
    });

    let mut indexed = results.into_inner().expect("result vector poisoned");
    indexed.sort_unstable_by_key(|&(idx, _)| idx);
    debug_assert_eq!(indexed.len(), len);
    indexed.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let out: Vec<usize> = (0..1000usize).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<usize>>());
    }

    #[test]
    fn vec_par_iter_works() {
        let data = vec!["a".to_string(), "bb".to_string(), "ccc".to_string()];
        let lens: Vec<usize> = data.into_par_iter().map(|s| s.len()).collect();
        assert_eq!(lens, vec![1, 2, 3]);
    }

    #[test]
    fn install_overrides_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        let seen = pool.install(current_num_threads);
        assert_eq!(seen, 3);
        assert_ne!(current_num_threads(), 0);
    }

    #[test]
    fn zero_threads_means_default() {
        let pool = ThreadPoolBuilder::new().num_threads(0).build().unwrap();
        assert!(pool.current_num_threads() >= 1);
    }
}
