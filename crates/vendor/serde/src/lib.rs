//! Minimal, self-contained stand-in for the `serde` crate.
//!
//! The build environment of this repository has no access to crates.io, so
//! the workspace vendors the small slice of serde's functionality it
//! actually uses: `#[derive(Serialize, Deserialize)]` on plain structs and
//! enums, plus a JSON-oriented [`Value`] data model that `serde_json`
//! (also vendored) renders and parses.
//!
//! The design intentionally deviates from upstream serde: instead of the
//! visitor-based zero-copy architecture, values are serialised into an
//! owned [`Value`] tree. That is entirely sufficient for the persistence
//! and reporting needs of this workspace (index snapshots, experiment
//! JSON exports) and keeps the vendored code auditable.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::time::Duration;

pub use serde_derive::{Deserialize, Serialize};

/// Re-export so generated code can name the derive macros via `serde::`.
pub mod derive {
    pub use serde_derive::{Deserialize, Serialize};
}

/// An ordered map of field name to value (insertion order preserved so the
/// JSON output matches the declaration order of the struct fields).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Creates an empty map.
    pub fn new() -> Self {
        Map {
            entries: Vec::new(),
        }
    }

    /// Inserts a key/value pair (replacing an existing key).
    pub fn insert(&mut self, key: impl Into<String>, value: Value) {
        let key = key.into();
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.entries.push((key, value));
        }
    }

    /// Looks up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates the entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

/// A dynamically typed value: the data model shared by `serde` and
/// `serde_json` in this vendored pair.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (negative JSON numbers).
    Int(i64),
    /// Unsigned integer (non-negative JSON numbers).
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object.
    Object(Map),
}

impl Value {
    /// Object field lookup (`None` for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// Array element lookup.
    pub fn get_index(&self, idx: usize) -> Option<&Value> {
        match self {
            Value::Array(items) => items.get(idx),
            _ => None,
        }
    }

    /// Object field lookup that reports a typed error, used by generated
    /// `Deserialize` impls.
    pub fn field(&self, key: &str) -> Result<&Value, Error> {
        self.get(key)
            .ok_or_else(|| Error::new(format!("missing field `{key}`")))
    }

    /// The value as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(x) => Some(x),
            Value::Int(x) if x >= 0 => Some(x as u64),
            _ => None,
        }
    }

    /// The value as `i64` if it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(x) => Some(x),
            Value::UInt(x) if x <= i64::MAX as u64 => Some(x as i64),
            _ => None,
        }
    }

    /// The value as `f64` if it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Float(x) => Some(x),
            Value::Int(x) => Some(x as f64),
            Value::UInt(x) => Some(x as f64),
            _ => None,
        }
    }

    /// The value as `&str` if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `bool` if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }
}

/// Serialisation/deserialisation error.
#[derive(Clone, Debug)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Types that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Serialises `self` into the data model.
    fn serialize(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserialises a value, reporting a descriptive [`Error`] on shape or
    /// type mismatches.
    fn deserialize(value: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn serialize(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $ty {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let raw = value
                    .as_u64()
                    .ok_or_else(|| Error::new(concat!("expected unsigned integer for ", stringify!($ty))))?;
                <$ty>::try_from(raw).map_err(|_| Error::new("integer out of range"))
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn serialize(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $ty {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let raw = value
                    .as_i64()
                    .ok_or_else(|| Error::new(concat!("expected integer for ", stringify!($ty))))?;
                <$ty>::try_from(raw).map_err(|_| Error::new("integer out of range"))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .ok_or_else(|| Error::new("expected number for f64"))
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .map(|x| x as f32)
            .ok_or_else(|| Error::new("expected number for f32"))
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_bool()
            .ok_or_else(|| Error::new("expected boolean"))
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::new("expected string"))
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let s = value
            .as_str()
            .ok_or_else(|| Error::new("expected string for char"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::new("expected single-character string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        T::deserialize(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            _ => Err(Error::new("expected array")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(inner) => inner.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize(&self) -> Value {
        Value::Array(vec![self.0.serialize(), self.1.serialize()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::deserialize(&items[0])?, B::deserialize(&items[1])?))
            }
            _ => Err(Error::new("expected 2-element array")),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize(&self) -> Value {
        Value::Array(vec![
            self.0.serialize(),
            self.1.serialize(),
            self.2.serialize(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) if items.len() == 3 => Ok((
                A::deserialize(&items[0])?,
                B::deserialize(&items[1])?,
                C::deserialize(&items[2])?,
            )),
            _ => Err(Error::new("expected 3-element array")),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize(&self) -> Value {
        let mut map = Map::new();
        for (k, v) in self {
            map.insert(k.clone(), v.serialize());
        }
        Value::Object(map)
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(map) => {
                let mut out = BTreeMap::new();
                for (k, v) in map.iter() {
                    out.insert(k.clone(), V::deserialize(v)?);
                }
                Ok(out)
            }
            _ => Err(Error::new("expected object")),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize(&self) -> Value {
        // Sort keys so output is deterministic.
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        let mut map = Map::new();
        for k in keys {
            map.insert(k.clone(), self[k].serialize());
        }
        Value::Object(map)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(map) => {
                let mut out = HashMap::new();
                for (k, v) in map.iter() {
                    out.insert(k.clone(), V::deserialize(v)?);
                }
                Ok(out)
            }
            _ => Err(Error::new("expected object")),
        }
    }
}

impl Serialize for Duration {
    fn serialize(&self) -> Value {
        let mut map = Map::new();
        map.insert("secs", Value::UInt(self.as_secs()));
        map.insert("nanos", Value::UInt(self.subsec_nanos() as u64));
        Value::Object(map)
    }
}

impl Deserialize for Duration {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let secs = u64::deserialize(value.field("secs")?)?;
        let nanos = u32::deserialize(value.field("nanos")?)?;
        Ok(Duration::new(secs, nanos))
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrips() {
        assert_eq!(u32::deserialize(&42u32.serialize()).unwrap(), 42);
        assert_eq!(i64::deserialize(&(-7i64).serialize()).unwrap(), -7);
        assert!(bool::deserialize(&true.serialize()).unwrap());
        assert_eq!(
            String::deserialize(&"hi".to_string().serialize()).unwrap(),
            "hi"
        );
        let v: Vec<u32> = Vec::deserialize(&vec![1u32, 2, 3].serialize()).unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        let d = Duration::new(3, 500);
        assert_eq!(Duration::deserialize(&d.serialize()).unwrap(), d);
        let pair: (u32, String) =
            Deserialize::deserialize(&(9u32, "x".to_string()).serialize()).unwrap();
        assert_eq!(pair, (9, "x".to_string()));
    }

    #[test]
    fn map_preserves_insertion_order() {
        let mut m = Map::new();
        m.insert("b", Value::UInt(1));
        m.insert("a", Value::UInt(2));
        let keys: Vec<&String> = m.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, ["b", "a"]);
        assert_eq!(m.get("a"), Some(&Value::UInt(2)));
    }

    #[test]
    fn option_uses_null() {
        assert_eq!(None::<u32>.serialize(), Value::Null);
        assert_eq!(Option::<u32>::deserialize(&Value::Null).unwrap(), None);
        assert_eq!(
            Option::<u32>::deserialize(&Value::UInt(4)).unwrap(),
            Some(4)
        );
    }
}
