//! Derive macros for the vendored `serde` stand-in.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! shapes this workspace actually uses:
//!
//! * structs with named fields (and unit structs),
//! * enums whose variants are unit, struct-like, or tuple-like.
//!
//! The input item is parsed directly from the proc-macro token stream (no
//! `syn`/`quote`, which are unavailable offline) and the generated impl is
//! assembled as a string and re-parsed — the types involved are plain data
//! carriers, so nothing fancier is required. Generic types are not
//! supported and produce a compile error naming the offending item.

#![forbid(unsafe_code)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (vendored flavour).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate_serialize(&item)
        .parse()
        .expect("generated Serialize impl must parse")
}

/// Derives `serde::Deserialize` (vendored flavour).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------------
// Input model
// ---------------------------------------------------------------------------

enum VariantKind {
    Unit,
    Struct(Vec<String>),
    Tuple(usize),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum ItemKind {
    Struct(Vec<String>),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    kind: ItemKind,
}

// ---------------------------------------------------------------------------
// Token-stream parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    skip_attributes(&mut tokens);
    skip_visibility(&mut tokens);

    let keyword = expect_ident(&mut tokens);
    let name = expect_ident(&mut tokens);

    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive (vendored): generic type `{name}` is not supported");
    }

    match keyword.as_str() {
        "struct" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item {
                name,
                kind: ItemKind::Struct(parse_named_fields(g.stream())),
            },
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item {
                name,
                kind: ItemKind::UnitStruct,
            },
            _ => panic!("serde_derive (vendored): tuple struct `{name}` is not supported"),
        },
        "enum" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item {
                name,
                kind: ItemKind::Enum(parse_variants(g.stream())),
            },
            _ => panic!("serde_derive (vendored): malformed enum `{name}`"),
        },
        other => panic!("serde_derive (vendored): cannot derive for `{other}` items"),
    }
}

type Tokens = std::iter::Peekable<proc_macro::token_stream::IntoIter>;

fn skip_attributes(tokens: &mut Tokens) {
    while matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        tokens.next(); // '#'
        tokens.next(); // [...]
    }
}

fn skip_visibility(tokens: &mut Tokens) {
    if matches!(tokens.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        tokens.next();
        if matches!(
            tokens.peek(),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            tokens.next();
        }
    }
}

fn expect_ident(tokens: &mut Tokens) -> String {
    match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive (vendored): expected identifier, found {other:?}"),
    }
}

/// Parses `name: Type, ...` pairs, returning the field names. Types are
/// skipped at the token level, tracking `<...>` nesting so commas inside
/// generic arguments do not split fields.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut tokens = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attributes(&mut tokens);
        if tokens.peek().is_none() {
            break;
        }
        skip_visibility(&mut tokens);
        let name = expect_ident(&mut tokens);
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!(
                "serde_derive (vendored): expected `:` after field `{name}`, found {other:?}"
            ),
        }
        skip_type(&mut tokens);
        fields.push(name);
    }
    fields
}

/// Consumes tokens of one type, stopping after the top-level `,` (or at the
/// end of the stream).
fn skip_type(tokens: &mut Tokens) {
    let mut angle_depth = 0usize;
    for token in tokens.by_ref() {
        match token {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth = angle_depth.saturating_sub(1);
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => return,
            _ => {}
        }
    }
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut tokens = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attributes(&mut tokens);
        if tokens.peek().is_none() {
            break;
        }
        let name = expect_ident(&mut tokens);
        let kind = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                tokens.next();
                VariantKind::Struct(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                tokens.next();
                VariantKind::Tuple(arity)
            }
            _ => VariantKind::Unit,
        };
        // Optional trailing comma between variants.
        if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            tokens.next();
        }
        variants.push(Variant { name, kind });
    }
    variants
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut tokens = stream.into_iter().peekable();
    let mut count = 0usize;
    while tokens.peek().is_some() {
        skip_attributes(&mut tokens);
        if tokens.peek().is_none() {
            break;
        }
        skip_visibility(&mut tokens);
        skip_type(&mut tokens);
        count += 1;
    }
    count
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn generate_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::UnitStruct => "::serde::Value::Null".to_string(),
        ItemKind::Struct(fields) => {
            let mut out = String::from("{ let mut __map = ::serde::Map::new();\n");
            for field in fields {
                out.push_str(&format!(
                    "__map.insert(\"{field}\", ::serde::Serialize::serialize(&self.{field}));\n"
                ));
            }
            out.push_str("::serde::Value::Object(__map) }");
            out
        }
        ItemKind::Enum(variants) => {
            let mut out = String::from("match self {\n");
            for variant in variants {
                let vname = &variant.name;
                match &variant.kind {
                    VariantKind::Unit => out.push_str(&format!(
                        "{name}::{vname} => ::serde::Value::String(\"{vname}\".to_string()),\n"
                    )),
                    VariantKind::Struct(fields) => {
                        let bindings = fields.join(", ");
                        out.push_str(&format!("{name}::{vname} {{ {bindings} }} => {{\n"));
                        out.push_str("let mut __inner = ::serde::Map::new();\n");
                        for field in fields {
                            out.push_str(&format!(
                                "__inner.insert(\"{field}\", ::serde::Serialize::serialize({field}));\n"
                            ));
                        }
                        out.push_str(&format!(
                            "let mut __outer = ::serde::Map::new();\n\
                             __outer.insert(\"{vname}\", ::serde::Value::Object(__inner));\n\
                             ::serde::Value::Object(__outer) }},\n"
                        ));
                    }
                    VariantKind::Tuple(arity) => {
                        let bindings: Vec<String> =
                            (0..*arity).map(|i| format!("__f{i}")).collect();
                        out.push_str(&format!("{name}::{vname}({}) => {{\n", bindings.join(", ")));
                        let payload = if *arity == 1 {
                            "::serde::Serialize::serialize(__f0)".to_string()
                        } else {
                            let items: Vec<String> = bindings
                                .iter()
                                .map(|b| format!("::serde::Serialize::serialize({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        out.push_str(&format!(
                            "let mut __outer = ::serde::Map::new();\n\
                             __outer.insert(\"{vname}\", {payload});\n\
                             ::serde::Value::Object(__outer) }},\n"
                        ));
                    }
                }
            }
            out.push('}');
            out
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(unused_mut, unused_variables, clippy::all)]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn serialize(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn generate_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::UnitStruct => format!("::std::result::Result::Ok({name})"),
        ItemKind::Struct(fields) => {
            let mut out = format!("::std::result::Result::Ok({name} {{\n");
            for field in fields {
                out.push_str(&format!(
                    "{field}: ::serde::Deserialize::deserialize(__value.field(\"{field}\")?)?,\n"
                ));
            }
            out.push_str("})");
            out
        }
        ItemKind::Enum(variants) => {
            let mut string_arms = String::new();
            let mut object_arms = String::new();
            for variant in variants {
                let vname = &variant.name;
                match &variant.kind {
                    VariantKind::Unit => string_arms.push_str(&format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),\n"
                    )),
                    VariantKind::Struct(fields) => {
                        let mut ctor = format!("{name}::{vname} {{\n");
                        for field in fields {
                            ctor.push_str(&format!(
                                "{field}: ::serde::Deserialize::deserialize(__inner.field(\"{field}\")?)?,\n"
                            ));
                        }
                        ctor.push('}');
                        object_arms.push_str(&format!(
                            "\"{vname}\" => ::std::result::Result::Ok({ctor}),\n"
                        ));
                    }
                    VariantKind::Tuple(arity) => {
                        if *arity == 1 {
                            object_arms.push_str(&format!(
                                "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                                 ::serde::Deserialize::deserialize(__inner)?)),\n"
                            ));
                        } else {
                            let elems: Vec<String> = (0..*arity)
                                .map(|i| {
                                    format!(
                                        "::serde::Deserialize::deserialize(__items.get({i}).ok_or_else(|| \
                                         ::serde::Error::new(\"missing tuple element\"))?)?"
                                    )
                                })
                                .collect();
                            object_arms.push_str(&format!(
                                "\"{vname}\" => match __inner {{\n\
                                 ::serde::Value::Array(__items) => \
                                 ::std::result::Result::Ok({name}::{vname}({elems})),\n\
                                 _ => ::std::result::Result::Err(::serde::Error::new(\
                                 \"expected array for tuple variant {vname}\")),\n\
                                 }},\n",
                                elems = elems.join(", ")
                            ));
                        }
                    }
                }
            }
            format!(
                "match __value {{\n\
                 ::serde::Value::String(__s) => match __s.as_str() {{\n\
                 {string_arms}\
                 __other => ::std::result::Result::Err(::serde::Error::new(\
                 format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                 }},\n\
                 ::serde::Value::Object(__map) => {{\n\
                 let (__key, __inner) = __map.iter().next().ok_or_else(|| \
                 ::serde::Error::new(\"expected single-key object for enum {name}\"))?;\n\
                 match __key.as_str() {{\n\
                 {object_arms}\
                 __other => ::std::result::Result::Err(::serde::Error::new(\
                 format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                 }}\n\
                 }},\n\
                 _ => ::std::result::Result::Err(::serde::Error::new(\
                 \"expected string or object for enum {name}\")),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(unused_variables, unreachable_patterns, clippy::all)]\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn deserialize(__value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         {body}\n\
         }}\n\
         }}"
    )
}
