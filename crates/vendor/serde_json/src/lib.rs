//! Minimal JSON front-end for the vendored `serde` stand-in.
//!
//! Provides the handful of entry points the workspace uses
//! (`to_string`, `to_string_pretty`, `to_vec`, `to_value`, `from_str`,
//! `from_slice`) plus the [`Value`] re-export. The JSON grammar supported is
//! complete (objects, arrays, strings with escapes, numbers, booleans,
//! null); the writer escapes control characters and emits `f64` values with
//! round-trip precision.

#![forbid(unsafe_code)]

use std::fmt::Write as _;

pub use serde::{Error, Map, Value};

/// Result alias matching the upstream crate's shape.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialises a value into its [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.serialize())
}

/// Serialises a value to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None, 0);
    Ok(out)
}

/// Serialises a value to an indented JSON string.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some(2), 0);
    Ok(out)
}

/// Serialises a value to compact JSON bytes.
pub fn to_vec<T: serde::Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Parses a JSON string into any deserialisable type.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T> {
    let value = parse_value(text)?;
    T::deserialize(&value)
}

/// Parses JSON bytes into any deserialisable type.
pub fn from_slice<T: serde::Deserialize>(bytes: &[u8]) -> Result<T> {
    let text = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid utf-8: {e}")))?;
    from_str(text)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(x) => {
            let _ = write!(out, "{x}");
        }
        Value::UInt(x) => {
            let _ = write!(out, "{x}");
        }
        Value::Float(x) => {
            if x.is_finite() {
                // `{:?}` gives the shortest representation that round-trips.
                let _ = write!(out, "{x:?}");
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(text: &str) -> Result<Value> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn skip_whitespace(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Value::String),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(Error::new(format!(
                "unexpected character at offset {}",
                self.pos
            ))),
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::new(format!(
                "invalid literal at offset {}",
                self.pos
            )))
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid unicode scalar"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|e| Error::new(format!("invalid utf-8: {e}")))?;
                    let c = rest
                        .chars()
                        .next()
                        .ok_or_else(|| Error::new("unterminated string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_nested_structures() {
        let mut inner = Map::new();
        inner.insert("a", Value::UInt(1));
        inner.insert("b", Value::Array(vec![Value::Int(-2), Value::Float(1.5)]));
        let v = Value::Object(inner);
        let compact = to_string(&v).unwrap();
        let back: Value = from_str(&compact).unwrap();
        assert_eq!(back, v);
        let pretty = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let v = Value::String("line\nquote\"backslash\\tab\tünïcode".to_string());
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{bad}").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("12 34").is_err());
    }

    #[test]
    fn float_precision_roundtrips() {
        let v = Value::Float(0.1 + 0.2);
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }
}
