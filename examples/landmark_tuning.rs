//! Landmark tuning: how the number and choice of landmarks affects QbS.
//!
//! Reproduces, on one dataset stand-in, the trade-off the paper studies in
//! §6.4 (Figures 9-11) and the landmark-selection question it leaves as
//! future work (§8): more landmarks sparsify the graph further and raise
//! pair coverage, but cost more construction time and labelling space, and
//! past a point they stop helping query time.
//!
//! Run with `cargo run --release --example landmark_tuning`.

use std::time::Instant;

use qbs::core::coverage::classify_workload;
use qbs::prelude::*;
use qbs_gen::catalog::{Catalog, DatasetId, Scale};

fn main() {
    let spec = *Catalog::paper_table1()
        .get(DatasetId::Youtube)
        .expect("catalog dataset");
    let graph = spec.generate(Scale::Small);
    let workload = QueryWorkload::sample_connected(&graph, 500, 2021);
    println!(
        "dataset: {} stand-in — {} vertices, {} edges, max degree {}\n",
        spec.id.name(),
        graph.num_vertices(),
        graph.num_edges(),
        graph.max_degree()
    );

    println!(
        "{:>4}  {:>10}  {:>12}  {:>12}  {:>10}  {:>10}",
        "|R|", "build (s)", "size(L)+Δ", "coverage", "avg q (ms)", "vs Bi-BFS"
    );

    // Baseline for the speed-up column.
    let bibfs = BiBfs::new(graph.clone());
    let t0 = Instant::now();
    for &(u, v) in workload.pairs() {
        std::hint::black_box(bibfs.query(u, v));
    }
    let bibfs_ms = t0.elapsed().as_secs_f64() * 1e3 / workload.len() as f64;

    for landmarks in [5usize, 10, 20, 40, 80] {
        let t0 = Instant::now();
        let qbs = Qbs::build(graph.clone(), QbsConfig::with_landmark_count(landmarks))
            .expect("session build");
        let build = t0.elapsed().as_secs_f64();
        let stats = qbs.stats().expect("owned session");
        let index = qbs.index().expect("owned session");
        let coverage = classify_workload(index, workload.pairs()).pair_coverage_ratio();

        let t0 = Instant::now();
        for &(u, v) in workload.pairs() {
            std::hint::black_box(qbs.query(u, v).unwrap());
        }
        let query_ms = t0.elapsed().as_secs_f64() * 1e3 / workload.len() as f64;

        println!(
            "{landmarks:>4}  {build:>10.3}  {:>12}  {coverage:>11.2}  {query_ms:>10.3}  {:>9.1}x",
            format_bytes(stats.labelling_paper_bytes + stats.delta_bytes),
            bibfs_ms / query_ms.max(f64::EPSILON),
        );
    }

    // Landmark *strategy* comparison at the paper's default |R| = 20.
    println!("\nlandmark strategy at |R| = 20:");
    for (label, strategy) in [
        (
            "highest degree (paper)",
            LandmarkStrategy::HighestDegree { count: 20 },
        ),
        ("random", LandmarkStrategy::Random { count: 20, seed: 3 }),
    ] {
        let qbs = Qbs::build(
            graph.clone(),
            QbsConfig {
                landmarks: strategy,
                ..QbsConfig::default()
            },
        )
        .expect("session build");
        let coverage =
            classify_workload(qbs.index().expect("owned"), workload.pairs()).pair_coverage_ratio();
        let t0 = Instant::now();
        for &(u, v) in workload.pairs() {
            std::hint::black_box(qbs.query(u, v).unwrap());
        }
        let query_ms = t0.elapsed().as_secs_f64() * 1e3 / workload.len() as f64;
        println!("  {label:<24} coverage {coverage:.2}, avg query {query_ms:.3} ms");
    }
}

fn format_bytes(bytes: usize) -> String {
    if bytes >= 1024 * 1024 {
        format!("{:.2}MB", bytes as f64 / (1024.0 * 1024.0))
    } else {
        format!("{:.1}KB", bytes as f64 / 1024.0)
    }
}
