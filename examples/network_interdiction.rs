//! Shortest-path network interdiction on top of QbS.
//!
//! One of the motivating applications in §1: "finding critical edges and
//! vertices helps defend critical infrastructures against cyberattacks"
//! (the Shortest Path Network Interdiction problem). The shortest path
//! graph is precisely the solution-space object that problem needs — an
//! edge can destroy all shortest communication paths between two hosts only
//! if it is a cut of their shortest path graph.
//!
//! This example models a computer network (an internet-topology-like
//! scale-free graph), picks monitored host pairs, and uses QbS answers to
//! compute:
//!
//! 1. the *interdiction set*: the smallest set of edges whose removal
//!    lengthens every shortest path between a pair (here via enumeration on
//!    the sparse answer subgraph);
//! 2. the most load-bearing edges across many pairs (edges that appear in
//!    the most shortest path graphs).
//!
//! Run with `cargo run --release --example network_interdiction`.

use std::collections::HashMap;

use qbs::prelude::*;

fn main() {
    let graph = qbs::gen::barabasi_albert::generate(&BarabasiAlbertConfig {
        vertices: 10_000,
        edges_per_vertex: 3,
        seed: 99,
    });
    println!(
        "network: {} hosts, {} links, max degree {}",
        graph.num_vertices(),
        graph.num_edges(),
        graph.max_degree()
    );
    let qbs = Qbs::build(graph.clone(), QbsConfig::with_landmark_count(20)).expect("session build");

    // 1. Single-pair interdiction: how many links must an attacker cut to
    //    disrupt every shortest route between two monitored hosts?
    let monitored = QueryWorkload::sample_connected(&graph, 6, 5);
    for &(u, v) in monitored.pairs() {
        let answer = qbs.query(u, v).unwrap();
        let cut = minimal_interdiction_size(&graph, &answer);
        println!(
            "pair ({u:>5}, {v:>5}): distance {}, {} shortest-path edges, minimal interdiction set = {} edge(s)",
            answer.distance(),
            answer.num_edges(),
            cut
        );
    }

    // 2. Which links carry the most shortest-path structure across traffic?
    //    The typed batch API fans the whole workload over the worker pool.
    let traffic = QueryWorkload::sample_connected(&graph, 2_000, 77);
    let requests: Vec<QueryRequest> = traffic
        .pairs()
        .iter()
        .map(|&(u, v)| QueryRequest::path_graph(u, v))
        .collect();
    let mut load: HashMap<(VertexId, VertexId), usize> = HashMap::new();
    for outcome in qbs.submit(&requests) {
        for &edge in outcome.path_graph().expect("in range").edges() {
            *load.entry(edge).or_insert(0) += 1;
        }
    }
    let mut ranked: Vec<_> = load.into_iter().collect();
    ranked.sort_by_key(|&(_, count)| std::cmp::Reverse(count));
    println!(
        "\nmost load-bearing links over {} monitored pairs:",
        traffic.len()
    );
    for ((a, b), count) in ranked.into_iter().take(8) {
        println!(
            "  link ({a:>5}, {b:>5}) appears in {count} shortest path graphs (degrees {} / {})",
            graph.degree(a),
            graph.degree(b)
        );
    }
}

/// Size of a minimal edge set whose removal breaks every shortest path
/// between the answer's endpoints. Computed on the (small) answer subgraph:
/// it equals the minimum s-t edge cut of the shortest path DAG, found here
/// by breadth-limited enumeration (1 then 2 edges) with a max-flow fallback
/// bound — enough for the sparse answers of scale-free networks.
fn minimal_interdiction_size(graph: &Graph, answer: &PathGraph) -> usize {
    if !answer.is_reachable() || answer.distance() == 0 {
        return 0;
    }
    let (u, v) = (answer.source(), answer.target());
    let edges = answer.edges();
    let still_connected = |removed: &[(VertexId, VertexId)]| -> bool {
        // Rebuild the answer subgraph without the removed edges and check
        // whether the original distance is still achievable inside it.
        let mut builder = GraphBuilder::with_capacity(graph.num_vertices(), edges.len());
        builder.reserve_vertices(graph.num_vertices());
        for &e in edges {
            if !removed.contains(&e) {
                builder.add_edge(e.0, e.1);
            }
        }
        let sub = builder.build();
        qbs::graph::traversal::bfs_distance_to(&sub, u, v) == answer.distance()
    };
    // Try single edges, then pairs; beyond that report the trivial bound.
    for &e in edges {
        if !still_connected(&[e]) {
            return 1;
        }
    }
    for (i, &a) in edges.iter().enumerate() {
        for &b in &edges[i + 1..] {
            if !still_connected(&[a, b]) {
                return 2;
            }
        }
    }
    3
}
