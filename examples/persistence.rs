//! Build an index, persist it in the flat `qbs-index-v2` binary format,
//! reload it, and prove the answers are bit-identical — the README's
//! persistence snippet as a runnable example.
//!
//! ```text
//! cargo run --release --example persistence
//! ```

use qbs::core::serialize;
use qbs::prelude::*;

fn main() -> Result<(), qbs::core::QbsError> {
    let graph = qbs::gen::barabasi_albert::generate(&BarabasiAlbertConfig {
        vertices: 2_000,
        edges_per_vertex: 3,
        seed: 42,
    });
    let index = QbsIndex::build(graph, QbsConfig::with_landmark_count(20));

    let path = std::env::temp_dir().join("g.qbs");
    serialize::save_to_file(&index, &path)?; //          v2 binary (the default)
    let restored = serialize::load_from_file(&path)?; // reads both v1 and v2
    assert_eq!(index.query(17, 1234)?, restored.query(17, 1234)?); // bit-identical

    // Zero-copy inspection without materialising the index:
    let view = serialize::load_view_from_file(&path, MapMode::Read)?;
    assert_eq!(view.num_landmarks(), 20);

    // ... and zero-materialisation serving straight from the mapped file:
    // a cold process maps the immutable index and answers immediately.
    let store = serialize::open_store_from_file(&path, MapMode::Mmap)?;
    let engine = QueryEngine::new(&store);
    assert_eq!(engine.query(17, 1234)?.path_graph, index.query(17, 1234)?);

    println!(
        "persisted {} bytes, reloaded bit-identically ({} vertices, {} landmarks)",
        std::fs::metadata(&path)?.len(),
        view.num_vertices(),
        view.num_landmarks()
    );
    Ok(())
}
