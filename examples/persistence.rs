//! Build an index, persist it in the flat `qbs-index-v2` binary format,
//! reload it, and prove the answers are bit-identical — the README's
//! persistence snippet as a runnable example.
//!
//! ```text
//! cargo run --release --example persistence
//! ```

use qbs::core::serialize;
use qbs::prelude::*;

fn main() -> Result<(), qbs::core::QbsError> {
    let graph = qbs::gen::barabasi_albert::generate(&BarabasiAlbertConfig {
        vertices: 2_000,
        edges_per_vertex: 3,
        seed: 42,
    });
    let index = QbsIndex::build(graph, QbsConfig::with_landmark_count(20));

    let path = std::env::temp_dir().join("g.qbs");
    serialize::save_to_file(&index, &path)?; //          v2 binary (the default)
    let restored = serialize::load_from_file(&path)?; // reads both v1 and v2
    assert_eq!(index.query(17, 1234)?, restored.query(17, 1234)?); // bit-identical

    // Zero-copy inspection without materialising the index:
    let view = serialize::load_view_from_file(&path, MapMode::Read)?;
    assert_eq!(view.num_landmarks(), 20);

    // Zero-materialisation serving straight from the mapped file — the
    // session façade picks the view backend from the file format, so a
    // cold process maps the immutable index and answers immediately.
    let qbs = Qbs::open(&path, MapMode::Mmap)?;
    assert_eq!(qbs.backend().name(), "view");
    assert_eq!(qbs.query(17, 1234)?, index.query(17, 1234)?);

    // The typed request pipeline serves the same mapped bytes.
    let outcomes = qbs.submit(&[
        QueryRequest::distance(17, 1234),
        QueryRequest::sketch(17, 1234),
    ]);
    assert_eq!(
        outcomes[0].distance(),
        Some(index.distance(17, 1234)?),
        "distance mode over the mapped file"
    );
    assert!(outcomes[1].sketch().is_some());

    println!(
        "persisted {} bytes, reloaded bit-identically ({} vertices, {} landmarks, \
         served via the {} backend)",
        std::fs::metadata(&path)?.len(),
        view.num_vertices(),
        view.num_landmarks(),
        qbs.backend().name(),
    );
    Ok(())
}
