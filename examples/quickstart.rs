//! Quickstart: build a QbS index over a synthetic social network, answer a
//! few shortest-path-graph queries and compare against the exact baseline.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use qbs::prelude::*;

fn main() {
    // 1. Build (or load) a graph. Here: a 20k-vertex scale-free network with
    //    hubs, the regime QbS is designed for.
    let graph = qbs::gen::barabasi_albert::generate(&BarabasiAlbertConfig {
        vertices: 20_000,
        edges_per_vertex: 4,
        seed: 42,
    });
    println!(
        "graph: {} vertices, {} edges, max degree {}",
        graph.num_vertices(),
        graph.num_edges(),
        graph.max_degree()
    );

    // 2. Build the index: 20 highest-degree landmarks, parallel labelling.
    let start = std::time::Instant::now();
    let index = QbsIndex::build(graph.clone(), QbsConfig::with_landmark_count(20));
    let stats = index.stats();
    println!(
        "index built in {:?}: size(L) = {} bytes, size(Δ) = {} bytes ({}x the graph)",
        start.elapsed(),
        stats.labelling_paper_bytes,
        stats.delta_bytes,
        stats.index_to_graph_ratio()
    );

    // 3. Answer queries. The answer is a subgraph containing *exactly all*
    //    shortest paths between the two vertices.
    let oracle = GroundTruth::new(graph.clone());
    let workload = QueryWorkload::sample_connected(&graph, 5, 7);
    for &(u, v) in workload.pairs() {
        let answer = index.query_with_stats(u, v).unwrap();
        let spg = &answer.path_graph;
        println!(
            "SPG({u}, {v}): distance {}, {} vertices, {} edges, d⊤ = {}, reverse = {}, recover = {}",
            spg.distance(),
            spg.num_vertices(),
            spg.num_edges(),
            answer.sketch.upper_bound,
            answer.stats.used_reverse_search,
            answer.stats.used_recover_search,
        );
        // The answer always matches the exact two-BFS oracle.
        assert_eq!(spg, &oracle.query(u, v));
        assert!(qbs::core::verify::is_exact(&graph, spg));
    }

    // 4. Timed batch: the online cost of QbS vs the search-based baseline.
    let pairs = QueryWorkload::sample_connected(&graph, 200, 11);
    let t = std::time::Instant::now();
    for &(u, v) in pairs.pairs() {
        std::hint::black_box(index.query(u, v).unwrap());
    }
    let qbs_time = t.elapsed();
    let bibfs = BiBfs::new(graph);
    let t = std::time::Instant::now();
    for &(u, v) in pairs.pairs() {
        std::hint::black_box(bibfs.query(u, v));
    }
    let bibfs_time = t.elapsed();
    println!(
        "200 queries: QbS {:?} total, Bi-BFS {:?} total ({:.1}x speed-up)",
        qbs_time,
        bibfs_time,
        bibfs_time.as_secs_f64() / qbs_time.as_secs_f64().max(f64::EPSILON)
    );
}
