//! Quickstart: start a QbS session over a synthetic social network, answer
//! shortest-path-graph queries (single and mixed typed batches), and
//! compare against the exact baseline.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use qbs::prelude::*;

fn main() {
    // 1. Build (or load) a graph. Here: a 20k-vertex scale-free network with
    //    hubs, the regime QbS is designed for.
    let graph = qbs::gen::barabasi_albert::generate(&BarabasiAlbertConfig {
        vertices: 20_000,
        edges_per_vertex: 4,
        seed: 42,
    });
    println!(
        "graph: {} vertices, {} edges, max degree {}",
        graph.num_vertices(),
        graph.num_edges(),
        graph.max_degree()
    );

    // 2. Start a session: 20 highest-degree landmarks, parallel labelling,
    //    plus a sharded LRU answer cache.
    let start = std::time::Instant::now();
    let qbs = Qbs::build(graph.clone(), QbsConfig::with_landmark_count(20))
        .expect("session build")
        .with_cache(CacheConfig::default());
    let stats = qbs.stats().expect("owned session has stats");
    println!(
        "index built in {:?}: size(L) = {} bytes, size(Δ) = {} bytes ({}x the graph)",
        start.elapsed(),
        stats.labelling_paper_bytes,
        stats.delta_bytes,
        stats.index_to_graph_ratio()
    );

    // 3. Answer queries. The answer is a subgraph containing *exactly all*
    //    shortest paths between the two vertices.
    let oracle = GroundTruth::new(graph.clone());
    let workload = QueryWorkload::sample_connected(&graph, 5, 7);
    for &(u, v) in workload.pairs() {
        let answer = qbs.query_with_stats(u, v).unwrap();
        let spg = &answer.path_graph;
        println!(
            "SPG({u}, {v}): distance {}, {} vertices, {} edges, d⊤ = {}, reverse = {}, recover = {}",
            spg.distance(),
            spg.num_vertices(),
            spg.num_edges(),
            answer.sketch.upper_bound,
            answer.stats.used_reverse_search,
            answer.stats.used_recover_search,
        );
        // The answer always matches the exact two-BFS oracle.
        assert_eq!(spg, &oracle.query(u, v));
        assert!(qbs::core::verify::is_exact(&graph, spg));
    }

    // 4. Typed batches: distance / path / sketch requests mix freely, and a
    //    bad request yields an error outcome for its slot only.
    let (u, v) = workload.pairs()[0];
    let outcomes = qbs.submit(&[
        QueryRequest::distance(u, v),
        QueryRequest::path_graph(u, v).with_stats(),
        QueryRequest::sketch(u, v),
        QueryRequest::distance(u, 999_999_999), // out of range
    ]);
    assert_eq!(outcomes[0].distance(), Some(qbs.distance(u, v).unwrap()));
    assert!(outcomes[1].answer().is_some());
    assert!(outcomes[2].sketch().is_some());
    assert!(outcomes[3].is_error(), "one bad slot, batch survived");
    println!(
        "mixed batch: {} outcomes, {} error ({})",
        outcomes.len(),
        outcomes.iter().filter(|o| o.is_error()).count(),
        outcomes[3].error().expect("error outcome"),
    );

    // 5. Timed batches: the online cost of QbS vs the search-based baseline,
    //    then the same workload warm out of the answer cache.
    let pairs = QueryWorkload::sample_connected(&graph, 200, 11);
    let requests: Vec<QueryRequest> = pairs
        .pairs()
        .iter()
        .map(|&(a, b)| QueryRequest::path_graph(a, b))
        .collect();
    let t = std::time::Instant::now();
    std::hint::black_box(qbs.submit(&requests));
    let qbs_time = t.elapsed();
    let t = std::time::Instant::now();
    std::hint::black_box(qbs.submit(&requests));
    let warm_time = t.elapsed();
    let bibfs = BiBfs::new(graph);
    let t = std::time::Instant::now();
    for &(a, b) in pairs.pairs() {
        std::hint::black_box(bibfs.query(a, b));
    }
    let bibfs_time = t.elapsed();
    let cache = qbs.cache_stats().expect("cache attached");
    println!(
        "200 queries: QbS {:?} cold / {:?} warm-cache, Bi-BFS {:?} ({:.1}x speed-up cold; \
         cache hit rate {:.0}%)",
        qbs_time,
        warm_time,
        bibfs_time,
        bibfs_time.as_secs_f64() / qbs_time.as_secs_f64().max(f64::EPSILON),
        cache.hit_ratio() * 100.0,
    );
}
