//! Social-tie analysis with shortest path graphs.
//!
//! The paper's introduction motivates shortest path *graphs* (rather than a
//! single shortest path) with social networks: two pairs of users at the
//! same distance can be connected by wildly different path structures
//! (Figure 1), and that structure reflects the strength of the tie. This
//! example reproduces that analysis on a community-structured synthetic
//! social network:
//!
//! * pairs inside a community tend to have many short, braided connections
//!   (a large shortest path graph);
//! * pairs in different communities are funnelled through a few bridge
//!   vertices (a thin shortest path graph), which are exactly the vertices a
//!   community detector or influence model would care about.
//!
//! Run with `cargo run --release --example social_network_analysis`.

use qbs::prelude::*;
use qbs_gen::community::{self, PlantedPartitionConfig};

fn main() {
    let config = PlantedPartitionConfig {
        communities: 12,
        community_size: 800,
        intra_degree: 10.0,
        inter_degree: 1.5,
        seed: 7,
    };
    let graph = community::generate(&config);
    println!(
        "social network: {} members, {} friendships, {} communities",
        graph.num_vertices(),
        graph.num_edges(),
        config.communities
    );

    let qbs = Qbs::build(graph.clone(), QbsConfig::with_landmark_count(20)).expect("session build");

    // Compare the tie structure of intra-community vs inter-community pairs
    // at the same hop distance. The typed batch API answers the whole
    // workload through the concurrent engine in one call.
    let workload = QueryWorkload::sample_connected(&graph, 4_000, 123);
    let requests: Vec<QueryRequest> = workload
        .pairs()
        .iter()
        .map(|&(u, v)| QueryRequest::path_graph(u, v))
        .collect();
    let outcomes = qbs.submit(&requests);
    let mut intra = Vec::new();
    let mut inter = Vec::new();
    for (&(u, v), outcome) in workload.pairs().iter().zip(&outcomes) {
        let same = community::community_of(&config, u) == community::community_of(&config, v);
        let answer = outcome.path_graph().expect("workload pairs are in range");
        if !answer.is_reachable() || answer.distance() != 3 {
            continue; // fix the distance so only the structure differs
        }
        let paths = (answer.num_edges(), answer.num_vertices());
        if same {
            intra.push(paths);
        } else {
            inter.push(paths);
        }
    }
    let avg = |set: &[(usize, usize)]| {
        if set.is_empty() {
            (0.0, 0.0)
        } else {
            (
                set.iter().map(|p| p.0 as f64).sum::<f64>() / set.len() as f64,
                set.iter().map(|p| p.1 as f64).sum::<f64>() / set.len() as f64,
            )
        }
    };
    let (intra_edges, intra_vertices) = avg(&intra);
    let (inter_edges, inter_vertices) = avg(&inter);
    println!("\npairs at distance exactly 3:");
    println!(
        "  same community      ({} pairs): avg {:.1} edges / {:.1} vertices per shortest path graph",
        intra.len(),
        intra_edges,
        intra_vertices
    );
    println!(
        "  different community ({} pairs): avg {:.1} edges / {:.1} vertices per shortest path graph",
        inter.len(),
        inter_edges,
        inter_vertices
    );
    println!("  (denser shortest path graphs = stronger, more redundant social ties)");

    // Drill into one cross-community pair: the vertices shared by *all*
    // shortest paths are the bridge users (the Shortest Path Common Links
    // problem from the introduction).
    if let Some(&(u, v)) = workload
        .pairs()
        .iter()
        .find(|&&(u, v)| community::community_of(&config, u) != community::community_of(&config, v))
    {
        let answer = qbs.query(u, v).unwrap();
        let truth = GroundTruth::new(graph.clone());
        assert_eq!(answer, truth.query(u, v));
        let bridges = critical_vertices(&graph, &answer);
        println!(
            "\ncross-community pair ({u}, {v}): distance {}, {} shortest-path vertices, {} of them critical: {:?}",
            answer.distance(),
            answer.num_vertices(),
            bridges.len(),
            bridges
        );
    }
}

/// Vertices (other than the endpoints) that lie on *every* shortest path:
/// removing any of them increases the distance — the "critical vertices" of
/// the Shortest Path Network Interdiction problem.
fn critical_vertices(graph: &Graph, answer: &PathGraph) -> Vec<VertexId> {
    let (u, v) = (answer.source(), answer.target());
    answer
        .vertices()
        .into_iter()
        .filter(|&x| x != u && x != v)
        .filter(|&x| {
            let filter = VertexFilter::from_vertices(graph.num_vertices(), [x]);
            let view = qbs::graph::FilteredGraph::new(graph, &filter);
            qbs::graph::bibfs::bidirectional_distance(&view, u, v).distance > answer.distance()
        })
        .collect()
}
