//! # qbs — Query-by-Sketch
//!
//! A Rust implementation of *"Query-by-Sketch: Scaling Shortest Path Graph
//! Queries on Very Large Networks"* (SIGMOD 2021), packaged as a workspace
//! façade. This crate simply re-exports the workspace members so downstream
//! users can depend on a single crate:
//!
//! * [`graph`] — the CSR graph substrate, traversal primitives and the
//!   [`PathGraph`] answer type;
//! * [`gen`] — deterministic synthetic graph generators, the Table 1 dataset
//!   catalog and query workloads;
//! * [`core`] — the QbS index: labelling, sketching and guided searching;
//! * [`baselines`] — the exact baselines (ground-truth BFS, Bi-BFS, PPL and
//!   ParentPPL) used by the paper's evaluation.
//!
//! # Quickstart
//!
//! ```
//! use qbs::prelude::*;
//!
//! // Build a small scale-free network and index it with 20 landmarks.
//! let graph = qbs::gen::barabasi_albert::generate(&BarabasiAlbertConfig {
//!     vertices: 2_000,
//!     edges_per_vertex: 3,
//!     seed: 42,
//! });
//! let index = QbsIndex::build(graph.clone(), QbsConfig::with_landmark_count(20));
//!
//! // Ask for the shortest path graph between two vertices and validate it
//! // against the definition (it contains exactly all shortest paths).
//! let answer = index.query(17, 1234).unwrap();
//! assert!(is_exact(&graph, &answer));
//! assert_eq!(answer, GroundTruth::new(graph.clone()).query(17, 1234));
//!
//! // Serving loops reuse an epoch-stamped workspace (zero O(|V|) work per
//! // query) or fan batches out over the concurrent engine.
//! let mut ws = QueryWorkspace::new();
//! assert_eq!(index.query_with(&mut ws, 17, 1234).unwrap().path_graph, answer);
//! let engine = QueryEngine::new(&index);
//! assert_eq!(engine.query_batch(&[(17, 1234)]).unwrap()[0].path_graph, answer);
//! ```
//!
//! (See `examples/quickstart.rs` for a larger runnable version.)

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use qbs_baselines as baselines;
pub use qbs_core as core;
pub use qbs_gen as gen;
pub use qbs_graph as graph;

pub use qbs_core::{QbsConfig, QbsIndex, QueryAnswer};
pub use qbs_graph::{Graph, GraphBuilder, PathGraph, VertexId};

/// The most commonly used items, importable with a single `use`.
pub mod prelude {
    pub use qbs_baselines::{BiBfs, GroundTruth, ParentPpl, Ppl, SpgEngine};
    pub use qbs_core::serialize::IndexFormat;
    pub use qbs_core::verify::{is_exact, validate};
    pub use qbs_core::{
        IndexStore, IndexView, LandmarkStrategy, MapMode, QbsConfig, QbsIndex, QueryAnswer,
        QueryEngine, QueryWorkspace, SearchStats, ViewBuf, ViewStore,
    };
    pub use qbs_gen::prelude::*;
    pub use qbs_graph::{Graph, GraphBuilder, PathGraph, VertexFilter, VertexId};
}
