//! # qbs — Query-by-Sketch
//!
//! A Rust implementation of *"Query-by-Sketch: Scaling Shortest Path Graph
//! Queries on Very Large Networks"* (SIGMOD 2021), packaged as a workspace
//! façade. This crate simply re-exports the workspace members so downstream
//! users can depend on a single crate:
//!
//! * [`graph`] — the CSR graph substrate, traversal primitives and the
//!   [`PathGraph`] answer type;
//! * [`gen`] — deterministic synthetic graph generators, the Table 1 dataset
//!   catalog and query workloads;
//! * [`core`] — the QbS index: labelling, sketching and guided searching;
//! * [`baselines`] — the exact baselines (ground-truth BFS, Bi-BFS, PPL and
//!   ParentPPL) used by the paper's evaluation;
//! * [`server`] — the framed TCP serving subsystem: protocol, admission
//!   control, the long-running server and the blocking client (spec in
//!   `docs/protocol.md`).
//!
//! # Quickstart
//!
//! A [`Qbs`] session is the one-stop entry point: it wraps either an
//! owned index ([`Qbs::build`]) or a zero-copy view of an index file
//! ([`Qbs::open`]) behind the same API, executes typed [`QueryRequest`]
//! batches with per-request outcomes, and can carry a sharded LRU answer
//! cache.
//!
//! ```
//! use qbs::prelude::*;
//!
//! // Build a small scale-free network and start a session over it with
//! // 20 landmarks and an answer cache.
//! let graph = qbs::gen::barabasi_albert::generate(&BarabasiAlbertConfig {
//!     vertices: 2_000,
//!     edges_per_vertex: 3,
//!     seed: 42,
//! });
//! let qbs = Qbs::build(graph.clone(), QbsConfig::with_landmark_count(20))
//!     .unwrap()
//!     .with_cache(CacheConfig::default());
//!
//! // Ask for the shortest path graph between two vertices and validate it
//! // against the definition (it contains exactly all shortest paths).
//! let answer = qbs.query(17, 1234).unwrap();
//! assert!(is_exact(&graph, &answer));
//! assert_eq!(answer, GroundTruth::new(graph.clone()).query(17, 1234));
//!
//! // Serving batches mix modes freely; a bad request fails alone.
//! let outcomes = qbs.submit(&[
//!     QueryRequest::distance(17, 1234),
//!     QueryRequest::path_graph(17, 1234).with_stats(),
//!     QueryRequest::sketch(17, 1234),
//!     QueryRequest::distance(17, 999_999),
//! ]);
//! assert_eq!(outcomes[0].distance(), Some(answer.distance()));
//! assert_eq!(outcomes[1].path_graph(), Some(&answer));
//! assert!(outcomes[2].sketch().is_some());
//! assert!(outcomes[3].is_error()); // that slot only — the batch survived
//! ```
//!
//! (See `examples/quickstart.rs` for a larger runnable version, and
//! `docs/api.md` for the migration table from the pre-session entry
//! points.)

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use qbs_baselines as baselines;
pub use qbs_core as core;
pub use qbs_gen as gen;
pub use qbs_graph as graph;
pub use qbs_server as server;

pub use qbs_core::{Qbs, QbsConfig, QbsIndex, QueryAnswer, QueryMode, QueryOutcome, QueryRequest};
pub use qbs_graph::{Graph, GraphBuilder, PathGraph, VertexId};

/// The most commonly used items, importable with a single `use`.
pub mod prelude {
    pub use qbs_baselines::{BiBfs, GroundTruth, ParentPpl, Ppl, SpgEngine, SpgQueryError};
    pub use qbs_core::serialize::IndexFormat;
    pub use qbs_core::verify::{is_exact, validate};
    pub use qbs_core::{
        AnswerCache, CacheConfig, CacheStats, CompactStore, CompactView, EngineStats, IndexProfile,
        IndexStore, IndexView, LandmarkStrategy, MapMode, Qbs, QbsBackend, QbsConfig, QbsIndex,
        QueryAnswer, QueryEngine, QueryMode, QueryOptions, QueryOutcome, QueryRequest,
        QueryWorkspace, RequestError, SearchStats, ViewBuf, ViewStore,
    };
    pub use qbs_gen::prelude::*;
    pub use qbs_graph::{Graph, GraphBuilder, PathGraph, VertexFilter, VertexId};
    pub use qbs_server::{
        AdmissionConfig, BatchReply, BusyReason, QbsClient, QbsServer, ServerConfig, ServerStats,
    };
}
