//! Cross-crate differential tests: every query engine in the workspace must
//! return exactly the same shortest path graph as the ground-truth double
//! BFS, on every dataset stand-in of the catalog and on adversarial
//! structured graphs.

use qbs::prelude::*;
use qbs_gen::catalog::{Catalog, Scale};
use qbs_gen::structured;

/// Runs every engine on the same workload and compares against the oracle.
///
/// The labelling baselines (PPL / ParentPPL) are only included when
/// `with_labelling_baselines` is set: their construction is `O(|V||E|)` with
/// `O(|V||E|)` parent storage, so in debug-mode CI they are exercised on the
/// smaller stand-ins (and on every graph family in
/// `crates/baselines/tests/baseline_differential.rs`), while QbS and Bi-BFS
/// run on all twelve.
fn assert_all_engines_agree(
    graph: &Graph,
    queries: usize,
    seed: u64,
    landmarks: usize,
    with_labelling_baselines: bool,
) {
    let workload = QueryWorkload::sample(graph, queries, seed);
    let truth = GroundTruth::new(graph.clone());
    let qbs = QbsIndex::build(graph.clone(), QbsConfig::with_landmark_count(landmarks));
    let qbs_seq = QbsIndex::build(
        graph.clone(),
        QbsConfig::with_landmark_count(landmarks).sequential(),
    );
    let bibfs = BiBfs::new(graph.clone());
    let labelling = if with_labelling_baselines {
        Some((Ppl::build(graph.clone()), ParentPpl::build(graph.clone())))
    } else {
        None
    };

    let mut ws = QueryWorkspace::new();
    for &(u, v) in workload.pairs() {
        let expected = truth.query(u, v);
        assert_eq!(
            qbs.query(u, v).unwrap(),
            expected,
            "QbS mismatch on ({u},{v})"
        );
        assert_eq!(
            qbs_seq.query(u, v).unwrap(),
            expected,
            "QbS (sequential) mismatch on ({u},{v})"
        );
        assert_eq!(bibfs.query(u, v), expected, "Bi-BFS mismatch on ({u},{v})");
        // The reused-workspace path must be bit-identical as well.
        let reused = qbs.query_with(&mut ws, u, v).expect("workspace query");
        assert_eq!(
            reused.path_graph, expected,
            "QbS workspace mismatch on ({u},{v})"
        );
        if let Some((ppl, parent_ppl)) = &labelling {
            assert_eq!(ppl.query(u, v), expected, "PPL mismatch on ({u},{v})");
            assert_eq!(
                parent_ppl.query(u, v),
                expected,
                "ParentPPL mismatch on ({u},{v})"
            );
        }
        // And the answer satisfies Definition 2.2 independently of the oracle.
        assert!(qbs::core::verify::is_exact(graph, &expected));
    }

    // The concurrent batch engine answers the whole workload identically,
    // and every engine's batch entry point agrees with its per-query path.
    let engine = QueryEngine::new(&qbs);
    let requests: Vec<QueryRequest> = workload
        .pairs()
        .iter()
        .map(|&(u, v)| QueryRequest::path_graph(u, v))
        .collect();
    let answers = engine.submit(&requests);
    let bibfs_batch = bibfs.query_batch(workload.pairs());
    let truth_batch = truth.query_batch(workload.pairs());
    for (i, &(u, v)) in workload.pairs().iter().enumerate() {
        let expected = truth.query(u, v);
        assert_eq!(
            *answers[i].path_graph().expect("in range"),
            expected,
            "engine batch mismatch on ({u},{v})"
        );
        assert_eq!(
            bibfs_batch[i], expected,
            "Bi-BFS batch mismatch on ({u},{v})"
        );
        assert_eq!(
            truth_batch[i], expected,
            "oracle batch mismatch on ({u},{v})"
        );
    }
}

#[test]
fn all_engines_agree_on_every_tiny_dataset_standin() {
    for spec in Catalog::paper_table1().specs() {
        let graph = spec.generate(Scale::Tiny);
        // Labelling baselines on the graphs small enough for debug-mode CI.
        let with_labelling = graph.num_vertices() <= 1_200;
        assert_all_engines_agree(&graph, 25, 0xDA7A ^ spec.seed, 20, with_labelling);
    }
}

#[test]
fn all_engines_agree_on_structured_graphs() {
    let cases: Vec<(&str, Graph)> = vec![
        ("grid", structured::grid(12, 9)),
        ("hypercube", structured::hypercube(6)),
        ("cycle", structured::cycle(61)),
        ("binary_tree", structured::binary_tree(127)),
        ("barbell", structured::barbell(12, 5)),
        ("complete", structured::complete(24)),
        ("star", structured::star(64)),
        ("path", structured::path(80)),
    ];
    for (name, graph) in cases {
        // Structured graphs stress unusual landmark configurations: in a
        // star the hub is the single dominant landmark, in a path the
        // "hubs" are arbitrary interior vertices, etc.
        for landmarks in [1usize, 4, 16] {
            let workload = QueryWorkload::sample(&graph, 30, 7);
            let truth = GroundTruth::new(graph.clone());
            let qbs = QbsIndex::build(graph.clone(), QbsConfig::with_landmark_count(landmarks));
            for &(u, v) in workload.pairs() {
                assert_eq!(
                    qbs.query(u, v).unwrap(),
                    truth.query(u, v),
                    "{name} with {landmarks} landmarks, query ({u},{v})"
                );
            }
        }
    }
}

#[test]
fn qbs_handles_disconnected_graphs() {
    // Two islands: queries across them must be unreachable, queries within
    // them exact, even though one island has no landmark at all.
    let mut builder = GraphBuilder::new();
    // Island A: a dense-ish community holding all the high-degree vertices.
    for u in 0..30u32 {
        for v in (u + 1)..30 {
            if (u + v) % 3 == 0 {
                builder.add_edge(u, v);
            }
        }
    }
    // Island B: a sparse ring with uniformly low degree.
    for i in 0..20u32 {
        builder.add_edge(30 + i, 30 + (i + 1) % 20);
    }
    let graph = builder.build();
    let truth = GroundTruth::new(graph.clone());
    let index = QbsIndex::build(graph.clone(), QbsConfig::with_landmark_count(8));

    for (u, v) in [(0u32, 29u32), (31, 45), (3, 42), (40, 10), (35, 35)] {
        assert_eq!(
            index.query(u, v).unwrap(),
            truth.query(u, v),
            "query ({u},{v})"
        );
    }
    assert!(!index.query(5, 35).unwrap().is_reachable());
}

#[test]
fn qbs_matches_oracle_with_landmark_endpoints_on_catalog_graph() {
    let spec = *Catalog::paper_table1()
        .specs()
        .first()
        .expect("catalog non-empty");
    let graph = spec.generate(Scale::Tiny);
    let index = QbsIndex::build(graph.clone(), QbsConfig::with_landmark_count(10));
    let truth = GroundTruth::new(graph.clone());
    let others = QueryWorkload::sample(&graph, 10, 3);
    for &r in index.landmarks() {
        for &(x, _) in others.pairs() {
            assert_eq!(
                index.query(r, x).unwrap(),
                truth.query(r, x),
                "landmark query ({r},{x})"
            );
            assert_eq!(
                index.query(x, r).unwrap(),
                truth.query(x, r),
                "landmark query ({x},{r})"
            );
        }
    }
    // Landmark-to-landmark queries as well.
    let landmarks = index.landmarks().to_vec();
    for &a in &landmarks {
        for &b in &landmarks {
            assert_eq!(
                index.query(a, b).unwrap(),
                truth.query(a, b),
                "landmark pair ({a},{b})"
            );
        }
    }
}

#[test]
fn serialized_index_answers_like_the_original() {
    let spec = Catalog::paper_table1().specs()[1];
    let graph = spec.generate(Scale::Tiny);
    let index = QbsIndex::build(graph.clone(), QbsConfig::with_landmark_count(16));
    let restored = qbs::core::serialize::from_bytes(
        &qbs::core::serialize::to_bytes(&index).expect("serialize"),
    )
    .expect("deserialize");
    let workload = QueryWorkload::sample_connected(&graph, 40, 9);
    for &(u, v) in workload.pairs() {
        assert_eq!(index.query(u, v).unwrap(), restored.query(u, v).unwrap());
    }
}
