//! End-to-end scenario tests exercising the whole pipeline the way the
//! experiment harness and a downstream user would: generate a dataset
//! stand-in, build the index, run a workload, check the qualitative claims
//! the paper makes about the results.

use qbs::prelude::*;
use qbs_core::coverage::classify_workload;
use qbs_gen::catalog::{Catalog, DatasetId, Scale};

/// §6.2.2: "the labelling sizes of QbS are generally smaller than the
/// original sizes of graphs" and "hundreds of times smaller than PPL".
#[test]
fn labelling_sizes_follow_table3_shape() {
    let spec = *Catalog::paper_table1()
        .get(DatasetId::Youtube)
        .expect("dataset");
    let graph = spec.generate(Scale::Tiny);
    let index = QbsIndex::build(graph.clone(), QbsConfig::with_landmark_count(20));
    let stats = index.stats();

    assert!(
        stats.labelling_paper_bytes < stats.graph_bytes,
        "size(L) {} should be below |G| {}",
        stats.labelling_paper_bytes,
        stats.graph_bytes
    );

    let ppl = Ppl::build(graph.clone());
    assert!(
        ppl.labelling_size_bytes() > 4 * stats.labelling_paper_bytes,
        "PPL {} should be far larger than QbS size(L) {}",
        ppl.labelling_size_bytes(),
        stats.labelling_paper_bytes
    );

    let parent = ParentPpl::build(graph);
    assert!(parent.labelling_size_bytes() > ppl.labelling_size_bytes());
}

/// §6.3: hub-dominated graphs (Youtube-like) have a much higher pair
/// coverage ratio than even-degree graphs (Friendster-like).
#[test]
fn pair_coverage_contrast_between_hub_and_even_degree_graphs() {
    let catalog = Catalog::paper_table1();
    let coverage_of = |id: DatasetId| {
        let graph = catalog.get(id).unwrap().generate(Scale::Tiny);
        let index = QbsIndex::build(graph.clone(), QbsConfig::with_landmark_count(20));
        let workload = QueryWorkload::sample_connected(&graph, 300, 17);
        classify_workload(&index, workload.pairs()).pair_coverage_ratio()
    };
    let youtube = coverage_of(DatasetId::Youtube);
    let friendster = coverage_of(DatasetId::Friendster);
    assert!(
        youtube > friendster,
        "hub graph coverage {youtube:.2} should exceed even-degree coverage {friendster:.2}"
    );
}

/// Table 2's qualitative claim: QbS answers queries faster than Bi-BFS on
/// hub-dominated graphs (checked as total workload time, not microbenchmark
/// precision).
#[test]
fn qbs_beats_bibfs_on_a_hub_dominated_standin() {
    let spec = *Catalog::paper_table1()
        .get(DatasetId::Baidu)
        .expect("dataset");
    let graph = spec.generate(Scale::Small);
    let workload = QueryWorkload::sample_connected(&graph, 150, 5);

    let index = QbsIndex::build(graph.clone(), QbsConfig::with_landmark_count(20));
    let bibfs = BiBfs::new(graph.clone());

    // Warm both paths once, then time.
    let (u0, v0) = workload.pairs()[0];
    assert_eq!(index.query(u0, v0).unwrap(), bibfs.query(u0, v0));

    let t = std::time::Instant::now();
    let mut qbs_edges = 0usize;
    for &(u, v) in workload.pairs() {
        qbs_edges += index.query_with_stats(u, v).unwrap().stats.edges_traversed;
    }
    let qbs_time = t.elapsed();

    let t = std::time::Instant::now();
    let mut bibfs_edges = 0usize;
    for &(u, v) in workload.pairs() {
        bibfs_edges += bibfs.query_with_effort(u, v).effort.edges_traversed;
    }
    let bibfs_time = t.elapsed();

    // The robust claim is about traversal work (§6.5); wall-clock should
    // follow but is allowed slack on a loaded CI machine.
    assert!(
        qbs_edges < bibfs_edges,
        "QbS traversed {qbs_edges} edges vs Bi-BFS {bibfs_edges}"
    );
    assert!(
        qbs_time < bibfs_time * 3,
        "QbS {qbs_time:?} should not be drastically slower than Bi-BFS {bibfs_time:?}"
    );
}

/// The parallel builder must produce the identical index on a real dataset
/// stand-in, and (weakly) should not be slower than sequential by a large
/// factor on a multi-core machine.
#[test]
fn parallel_labelling_is_identical_on_a_dataset_standin() {
    let spec = *Catalog::paper_table1()
        .get(DatasetId::Skitter)
        .expect("dataset");
    let graph = spec.generate(Scale::Tiny);
    let landmarks = graph.top_k_by_degree(32);
    let sequential = qbs::core::labelling::build_sequential(&graph, &landmarks);
    let parallel = qbs::core::parallel::build_parallel(&graph, &landmarks);
    assert_eq!(sequential, parallel);
    let four_threads = qbs::core::parallel::build_with_threads(&graph, &landmarks, 4)
        .expect("dedicated labelling pool");
    assert_eq!(sequential, four_threads);
}

/// Index persistence on a realistic graph: save to a temp file, reload and
/// verify a workload agrees with the oracle.
#[test]
fn persisted_index_round_trips_through_disk() {
    let spec = *Catalog::paper_table1()
        .get(DatasetId::Douban)
        .expect("dataset");
    let graph = spec.generate(Scale::Tiny);
    let index = QbsIndex::build(graph.clone(), QbsConfig::with_landmark_count(12));

    let dir = std::env::temp_dir().join("qbs_end_to_end_test");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("douban.qbs");
    qbs::core::serialize::save_to_file(&index, &path).expect("save");
    let restored = qbs::core::serialize::load_from_file(&path).expect("load");

    let oracle = GroundTruth::new(graph.clone());
    let workload = QueryWorkload::sample_connected(&graph, 50, 23);
    for &(u, v) in workload.pairs() {
        assert_eq!(restored.query(u, v).unwrap(), oracle.query(u, v));
    }
}

/// Figure 7's qualitative claim: sampled query distances on the stand-ins
/// concentrate in the small-world range (roughly 2–9).
#[test]
fn query_distances_fall_in_the_small_world_range() {
    for spec in Catalog::representative().specs() {
        let graph = spec.generate(Scale::Small);
        let workload = QueryWorkload::sample_connected(&graph, 500, 31);
        let histogram = workload.distance_histogram(&graph);
        let mean = histogram.mean().expect("non-empty workload");
        assert!(
            (1.5..=10.0).contains(&mean),
            "{:?}: mean sampled distance {mean:.2} outside the small-world range",
            spec.id
        );
        assert_eq!(histogram.unreachable, 0);
    }
}
