//! Property-based tests (proptest) over randomly generated graphs.
//!
//! These check the paper's stated invariants on arbitrary inputs rather than
//! hand-picked examples:
//!
//! * QbS answers equal the ground-truth shortest path graph (Theorem 5.1);
//! * the sketch upper bound dominates the true distance (Corollary 4.6);
//! * the labelling scheme is deterministic and order-independent
//!   (Lemma 5.2);
//! * answers are symmetric in the query endpoints and every answer edge is a
//!   graph edge (Definition 2.2);
//! * PPL and ParentPPL remain exact (2-hop path cover, Definition 3.2).

use proptest::prelude::*;

use qbs::prelude::*;
use qbs_graph::INFINITE_DISTANCE;

/// Strategy: a random edge list over up to `max_vertices` vertices, turned
/// into a normalised undirected graph (possibly disconnected).
fn arbitrary_graph(max_vertices: u32, max_edges: usize) -> impl Strategy<Value = Graph> {
    prop::collection::vec((0..max_vertices, 0..max_vertices), 1..max_edges).prop_map(move |edges| {
        let mut builder = GraphBuilder::from_edges(edges);
        builder.reserve_vertices(max_vertices as usize);
        builder.build()
    })
}

/// Exact oracle answer, used as the reference in every property.
fn oracle(graph: &Graph, u: VertexId, v: VertexId) -> PathGraph {
    GroundTruth::new(graph.clone()).query(u, v)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn qbs_matches_ground_truth_on_random_graphs(
        graph in arbitrary_graph(60, 220),
        landmarks in 1usize..12,
        u in 0u32..60,
        v in 0u32..60,
    ) {
        let index = QbsIndex::build(graph.clone(), QbsConfig::with_landmark_count(landmarks));
        let answer = index.query(u, v).unwrap();
        prop_assert_eq!(&answer, &oracle(&graph, u, v));
        // Definition 2.2 holds structurally as well.
        prop_assert!(qbs::core::verify::is_exact(&graph, &answer));
    }

    #[test]
    fn qbs_answers_are_symmetric(
        graph in arbitrary_graph(50, 160),
        u in 0u32..50,
        v in 0u32..50,
    ) {
        let index = QbsIndex::build(graph.clone(), QbsConfig::with_landmark_count(6));
        let forward = index.query(u, v).unwrap();
        let backward = index.query(v, u).unwrap();
        prop_assert_eq!(forward.edges(), backward.edges());
        prop_assert_eq!(forward.distance(), backward.distance());
    }

    #[test]
    fn sketch_upper_bound_dominates_distance(
        graph in arbitrary_graph(50, 200),
        u in 0u32..50,
        v in 0u32..50,
    ) {
        // Corollary 4.6: d⊤ ≥ d_G(u, v) whenever the sketch exists.
        let index = QbsIndex::build(graph.clone(), QbsConfig::with_landmark_count(8));
        let sketch = index.sketch(u, v).expect("vertices in range");
        let d = oracle(&graph, u, v).distance();
        if sketch.upper_bound != INFINITE_DISTANCE && d != INFINITE_DISTANCE {
            prop_assert!(sketch.upper_bound >= d);
        }
        // And the guided search always reports the exact distance.
        if u != v {
            let stats = index.query_with_stats(u, v).unwrap().stats;
            prop_assert_eq!(stats.distance, d);
            prop_assert!(stats.upper_bound >= stats.distance || stats.distance == INFINITE_DISTANCE);
        }
    }

    #[test]
    fn labelling_is_deterministic_and_order_independent(
        graph in arbitrary_graph(40, 140),
        count in 1usize..8,
    ) {
        // Lemma 5.2: same landmark set (any order, any thread count) — same
        // scheme.
        let landmarks = graph.top_k_by_degree(count);
        let mut reversed = landmarks.clone();
        reversed.reverse();

        let sequential = qbs::core::labelling::build_sequential(&graph, &landmarks);
        let parallel = qbs::core::parallel::build_parallel(&graph, &landmarks);
        prop_assert_eq!(&sequential, &parallel);

        let permuted = qbs::core::labelling::build_sequential(&graph, &reversed);
        prop_assert_eq!(sequential.labelling.total_entries(), permuted.labelling.total_entries());
        for v in graph.vertices() {
            let mut a: Vec<(u32, u32)> = sequential
                .labelling
                .entries(v)
                .map(|(i, d)| (sequential.landmarks[i], d))
                .collect();
            let mut b: Vec<(u32, u32)> =
                permuted.labelling.entries(v).map(|(i, d)| (permuted.landmarks[i], d)).collect();
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn labels_store_exact_distances(
        graph in arbitrary_graph(40, 150),
        count in 1usize..8,
    ) {
        // Every label entry (r, δ) must satisfy δ = d_G(v, r) (Definition 4.2).
        let landmarks = graph.top_k_by_degree(count);
        let scheme = qbs::core::labelling::build_sequential(&graph, &landmarks);
        for (i, &r) in landmarks.iter().enumerate() {
            let dist = qbs::graph::traversal::bfs_distances(&graph, r);
            for v in graph.vertices() {
                if let Some(d) = scheme.labelling.get(v, i) {
                    prop_assert_eq!(d, dist[v as usize]);
                }
            }
        }
    }

    #[test]
    fn ppl_and_parent_ppl_are_exact(
        graph in arbitrary_graph(36, 110),
        u in 0u32..36,
        v in 0u32..36,
    ) {
        let expected = oracle(&graph, u, v);
        let ppl = Ppl::build(graph.clone());
        prop_assert_eq!(&ppl.query(u, v), &expected);
        let parent = ParentPpl::build(graph.clone());
        prop_assert_eq!(&parent.query(u, v), &expected);
        // PPL distances are exact too (2-hop distance cover).
        prop_assert_eq!(ppl.distance(u, v), expected.distance());
    }

    #[test]
    fn bibfs_is_exact_and_bounded_by_graph_size(
        graph in arbitrary_graph(48, 170),
        u in 0u32..48,
        v in 0u32..48,
    ) {
        let engine = BiBfs::new(graph.clone());
        let answer = engine.query_with_effort(u, v);
        prop_assert_eq!(&answer.spg, &oracle(&graph, u, v));
        // Each side traverses every directed arc at most once.
        prop_assert!(answer.effort.edges_traversed <= 2 * graph.num_arcs() + 2);
    }

    #[test]
    fn answer_edges_are_graph_edges_and_vertices_lie_on_shortest_paths(
        graph in arbitrary_graph(45, 160),
        u in 0u32..45,
        v in 0u32..45,
    ) {
        let index = QbsIndex::build(graph.clone(), QbsConfig::with_landmark_count(5));
        let answer = index.query(u, v).unwrap();
        let du = qbs::graph::traversal::bfs_distances(&graph, u);
        let dv = qbs::graph::traversal::bfs_distances(&graph, v);
        for &(a, b) in answer.edges() {
            prop_assert!(graph.has_edge(a, b));
        }
        if answer.is_reachable() && u != v {
            for x in answer.vertices() {
                prop_assert_eq!(
                    du[x as usize] + dv[x as usize],
                    answer.distance(),
                    "vertex {} not on any shortest path", x
                );
            }
        }
    }

    #[test]
    fn graph_builder_normalisation_invariants(
        edges in prop::collection::vec((0u32..40, 0u32..40), 0..160),
    ) {
        // The substrate invariants everything else relies on: sorted,
        // deduplicated, symmetric adjacency with no self-loops.
        let graph = GraphBuilder::from_edges(edges.into_iter()).build();
        for v in graph.vertices() {
            let neighbors = graph.neighbors(v);
            prop_assert!(neighbors.windows(2).all(|w| w[0] < w[1]));
            for &w in neighbors {
                prop_assert_ne!(w, v);
                prop_assert!(graph.neighbors(w).binary_search(&v).is_ok());
            }
        }
        prop_assert_eq!(graph.edges().count(), graph.num_edges());
    }
}
